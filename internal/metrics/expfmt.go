package metrics

// Strict parser for the Prometheus text exposition format (version 0.0.4).
// ParseExposition validates the full grammar — not just "lines that look
// like metrics" — so the CI profile-smoke job and the serve tests can
// assert a live scrape is well-formed:
//
//   - every sample belongs to a family announced by a # TYPE line, and a
//     family's lines are contiguous (no interleaving);
//   - HELP/TYPE appear at most once per family, TYPE before any sample;
//   - metric and label names match the spec's character sets, label
//     values use only the \\, \", \n escapes, values parse as floats;
//   - histogram families carry a +Inf bucket per labelset, cumulative
//     non-decreasing bucket counts, and _count equal to the +Inf bucket;
//   - counters are finite and non-negative, and no series repeats.
//
// The parser accepts any conforming producer, not only this package's
// writer (label order within a sample is free, timestamps are allowed).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one parsed name="value" pair.
type Label struct{ Name, Value string }

// Sample is one parsed sample line.
type Sample struct {
	Name   string // full sample name (may carry _bucket/_sum/_count)
	Labels []Label
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Label returns the sample's value for a label name ("" if absent).
func (s *Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Scrape is a parsed exposition.
type Scrape struct {
	Families []*Family
	byName   map[string]*Family
}

// Family returns a family by name, nil if absent.
func (s *Scrape) Family(name string) *Family { return s.byName[name] }

// validTypes are the exposition format's metric types.
var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// parseError annotates a failure with its line number.
func parseError(line int, format string, args ...any) error {
	return fmt.Errorf("metrics: parse line %d: %s", line, fmt.Sprintf(format, args...))
}

// ParseExposition reads and validates a full scrape.
func ParseExposition(r io.Reader) (*Scrape, error) {
	sc := &Scrape{byName: make(map[string]*Family)}
	var cur *Family // family currently being read (lines must be contiguous)
	seen := make(map[string]bool)

	// open returns the family a line belongs to, enforcing contiguity.
	open := func(n int, name string, create bool) (*Family, error) {
		if cur != nil && cur.Name == name {
			return cur, nil
		}
		if f, ok := sc.byName[name]; ok {
			return nil, parseError(n, "family %q reopened after other families (got %d samples already)", name, len(f.Samples))
		}
		if !create {
			return nil, nil
		}
		f := &Family{Name: name}
		sc.byName[name] = f
		sc.Families = append(sc.Families, f)
		cur = f
		return f, nil
	}

	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	n := 0
	for scanner.Scan() {
		n++
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(sc, open, n, line); err != nil {
				return nil, err
			}
			continue
		}
		s, err := parseSample(n, line)
		if err != nil {
			return nil, err
		}
		famName := s.Name
		if f, ok := sc.byName[famName]; !ok || f.Type == "histogram" || f.Type == "summary" {
			// _bucket/_sum/_count belong to their base histogram family.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(s.Name, suf)
				if base != s.Name {
					if bf, ok := sc.byName[base]; ok && (bf.Type == "histogram" || bf.Type == "summary") {
						famName = base
						break
					}
				}
			}
		}
		f, err := open(n, famName, false)
		if err != nil {
			return nil, err
		}
		if f == nil {
			return nil, parseError(n, "sample %q without a preceding # TYPE", s.Name)
		}
		if f.Type == "" {
			return nil, parseError(n, "sample %q before its # TYPE line", s.Name)
		}
		if f.Type == "counter" && (s.Value < 0 || s.Value != s.Value) {
			return nil, parseError(n, "counter %q has non-monotone value %g", s.Name, s.Value)
		}
		key := seriesKey(s)
		if seen[key] {
			return nil, parseError(n, "duplicate series %s", key)
		}
		seen[key] = true
		f.Samples = append(f.Samples, s)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("metrics: parse: %w", err)
	}

	for _, f := range sc.Families {
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return sc, nil
}

// parseComment handles # HELP / # TYPE / free comments.
func parseComment(sc *Scrape, open func(int, string, bool) (*Family, error), n int, line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // a free-form comment: legal, ignored
	}
	name := fields[2]
	if !nameOK(name) {
		return parseError(n, "invalid metric name %q", name)
	}
	f, err := open(n, name, true)
	if err != nil {
		return err
	}
	switch fields[1] {
	case "HELP":
		if f.Help != "" {
			return parseError(n, "second HELP for %q", name)
		}
		if len(fields) == 4 {
			f.Help = fields[3]
		} else {
			f.Help = " " // present but empty
		}
	case "TYPE":
		if f.Type != "" {
			return parseError(n, "second TYPE for %q", name)
		}
		if len(f.Samples) > 0 {
			return parseError(n, "TYPE after samples for %q", name)
		}
		if len(fields) != 4 || !validTypes[fields[3]] {
			return parseError(n, "invalid TYPE for %q: %v", name, fields[3:])
		}
		f.Type = fields[3]
	}
	return nil
}

// parseSample parses one `name[{labels}] value [timestamp]` line.
func parseSample(n int, line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	s.Name = line[:i]
	if !nameOK(s.Name) {
		return s, parseError(n, "invalid sample name in %q", line)
	}
	rest := line[i:]

	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(n, rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	if rest == "" {
		return s, parseError(n, "missing value in %q", line)
	}
	parts := strings.Fields(rest)
	if len(parts) > 2 {
		return s, parseError(n, "trailing garbage in %q", line)
	}
	v, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return s, parseError(n, "bad value %q: %v", parts[0], err)
	}
	s.Value = v
	if len(parts) == 2 {
		if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
			return s, parseError(n, "bad timestamp %q", parts[1])
		}
	}
	return s, nil
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// parseLabels parses a `{a="x",b="y"}` block, returning its byte length.
func parseLabels(n int, s string) (int, []Label, error) {
	var labels []Label
	i := 1 // past '{'
	names := make(map[string]bool)
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start) {
			i++
		}
		name := s[start:i]
		if name == "" || strings.Contains(name, ":") {
			return 0, nil, parseError(n, "invalid label name at %q", s[start:])
		}
		if names[name] {
			return 0, nil, parseError(n, "duplicate label %q", name)
		}
		names[name] = true
		if i >= len(s) || s[i] != '=' {
			return 0, nil, parseError(n, "missing '=' after label %q", name)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, nil, parseError(n, "unquoted value for label %q", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, parseError(n, "unterminated value for label %q", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(s) {
					return 0, nil, parseError(n, "dangling escape in label %q", name)
				}
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, parseError(n, "invalid escape \\%c in label %q", s[i], name)
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		return 0, nil, parseError(n, "expected ',' or '}' after label %q", name)
	}
}

// seriesKey identifies a series: name plus sorted label pairs.
func seriesKey(s Sample) string {
	pairs := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		pairs[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(pairs)
	return s.Name + "{" + strings.Join(pairs, ",") + "}"
}

// checkHistogram validates each labelset's bucket/sum/count contract.
func checkHistogram(f *Family) error {
	type agg struct {
		buckets  []Sample
		inf      *float64
		count    *float64
		sum      bool
		lastCum  float64
		haveLast bool
	}
	groups := make(map[string]*agg)
	order := []string{}
	groupKey := func(s Sample) string {
		pairs := []string{}
		for _, l := range s.Labels {
			if l.Name != "le" {
				pairs = append(pairs, l.Name+"="+strconv.Quote(l.Value))
			}
		}
		sort.Strings(pairs)
		return strings.Join(pairs, ",")
	}
	get := func(k string) *agg {
		if g, ok := groups[k]; ok {
			return g
		}
		g := &agg{}
		groups[k] = g
		order = append(order, k)
		return g
	}
	for _, s := range f.Samples {
		g := get(groupKey(s))
		switch {
		case s.Name == f.Name+"_bucket":
			le := s.Label("le")
			if le == "" {
				return fmt.Errorf("metrics: %s_bucket without le label", f.Name)
			}
			if g.haveLast && s.Value < g.lastCum {
				return fmt.Errorf("metrics: %s buckets not cumulative at le=%q", f.Name, le)
			}
			g.lastCum, g.haveLast = s.Value, true
			if le == "+Inf" {
				v := s.Value
				g.inf = &v
			}
			g.buckets = append(g.buckets, s)
		case s.Name == f.Name+"_sum":
			g.sum = true
		case s.Name == f.Name+"_count":
			v := s.Value
			g.count = &v
		default:
			return fmt.Errorf("metrics: histogram %s has stray sample %s", f.Name, s.Name)
		}
	}
	for _, k := range order {
		g := groups[k]
		if g.inf == nil {
			return fmt.Errorf("metrics: histogram %s{%s} missing +Inf bucket", f.Name, k)
		}
		if g.count == nil || !g.sum {
			return fmt.Errorf("metrics: histogram %s{%s} missing _sum or _count", f.Name, k)
		}
		if *g.count != *g.inf {
			return fmt.Errorf("metrics: histogram %s{%s}: _count %g != +Inf bucket %g", f.Name, k, *g.count, *g.inf)
		}
	}
	return nil
}
