package domains

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/reg"
)

// threeDomains builds a representative SoC: core behind the SC converter,
// SRAM behind the LDO with a retention floor, radio behind the buck.
func threeDomains() []Domain {
	return []Domain{
		{Name: "core", Reg: reg.NewSC(), Supply: 0.55, MaxPower: 10e-3, Weight: 2},
		{Name: "sram", Reg: reg.NewLDO(), Supply: 0.45, MinPower: 0.2e-3, MaxPower: 2e-3},
		{Name: "radio", Reg: reg.NewBuck(), Supply: 0.60, MaxPower: 6e-3},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrNoDomains) {
		t.Errorf("empty: %v", err)
	}
	bad := []Domain{{Name: "x", Supply: 0.5, MaxPower: 1e-3}}
	if _, err := New(bad); !errors.Is(err, ErrBadDomain) {
		t.Errorf("no regulator: %v", err)
	}
	bad2 := []Domain{{Name: "x", Reg: reg.NewSC(), Supply: 0, MaxPower: 1e-3}}
	if _, err := New(bad2); !errors.Is(err, ErrBadDomain) {
		t.Errorf("zero supply: %v", err)
	}
	bad3 := []Domain{{Name: "x", Reg: reg.NewSC(), Supply: 0.5, MinPower: 2e-3, MaxPower: 1e-3}}
	if _, err := New(bad3); !errors.Is(err, ErrBadDomain) {
		t.Errorf("inverted window: %v", err)
	}
}

func TestAllocateRespectsBudgetAndFloors(t *testing.T) {
	a, err := New(threeDomains())
	if err != nil {
		t.Fatal(err)
	}
	const vin, budget = 1.1, 12e-3
	alloc, err := a.Allocate(vin, budget)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalDraw > budget*(1+1e-9) {
		t.Errorf("draw %.4g exceeds budget %.4g", alloc.TotalDraw, budget)
	}
	// Budget nearly exhausted (within one quantum's worth of draw).
	if alloc.TotalDraw < budget-1e-3 {
		t.Errorf("draw %.4g leaves too much budget unused", alloc.TotalDraw)
	}
	byName := map[string]Share{}
	for _, s := range alloc.Shares {
		byName[s.Name] = s
		if s.LoadPower < 0 {
			t.Errorf("%s negative load", s.Name)
		}
		if s.DrawPower < s.LoadPower-1e-12 {
			t.Errorf("%s: free energy (draw %.4g < load %.4g)", s.Name, s.DrawPower, s.LoadPower)
		}
	}
	if byName["sram"].LoadPower < 0.2e-3-1e-9 {
		t.Errorf("sram floor not funded: %.4g", byName["sram"].LoadPower)
	}
	// The weighted core should get the largest share.
	if byName["core"].LoadPower <= byName["radio"].LoadPower {
		t.Errorf("core %.4g <= radio %.4g despite double weight",
			byName["core"].LoadPower, byName["radio"].LoadPower)
	}
}

func TestBudgetTooSmall(t *testing.T) {
	ds := threeDomains()
	ds[1].MinPower = 5e-3 // enormous retention floor
	ds[1].MaxPower = 6e-3
	a, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Allocate(1.1, 1e-3); !errors.Is(err, ErrBudgetTooSmall) {
		t.Errorf("want ErrBudgetTooSmall, got %v", err)
	}
}

func TestHugeBudgetSaturatesEveryone(t *testing.T) {
	a, err := New(threeDomains())
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := a.Allocate(1.1, 1.0) // 1 W: effectively unlimited
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range alloc.Shares {
		if !s.Saturated {
			t.Errorf("%s not saturated under unlimited budget (%.4g W)", s.Name, s.LoadPower)
		}
	}
}

func TestUtilityMonotoneInBudget(t *testing.T) {
	a, err := New(threeDomains())
	if err != nil {
		t.Fatal(err)
	}
	budgets := []float64{2e-3, 5e-3, 10e-3, 20e-3, 40e-3}
	allocs, err := a.Sweep(1.1, budgets)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(allocs); i++ {
		if allocs[i].TotalUtility < allocs[i-1].TotalUtility-1e-9 {
			t.Fatalf("utility fell with more budget: %.4g -> %.4g",
				allocs[i-1].TotalUtility, allocs[i].TotalUtility)
		}
		if allocs[i].TotalLoad < allocs[i-1].TotalLoad-1e-9 {
			t.Fatalf("delivered power fell with more budget")
		}
	}
}

func TestEfficiencyAwareness(t *testing.T) {
	// Two identical loads, one behind the SC, one behind the LDO: the
	// allocator must favour the efficient path.
	ds := []Domain{
		{Name: "viaSC", Reg: reg.NewSC(), Supply: 0.55, MaxPower: 8e-3},
		{Name: "viaLDO", Reg: reg.NewLDO(), Supply: 0.55, MaxPower: 8e-3},
	}
	a, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := a.Allocate(1.1, 6e-3)
	if err != nil {
		t.Fatal(err)
	}
	var sc, ldo Share
	for _, s := range alloc.Shares {
		if s.Name == "viaSC" {
			sc = s
		} else {
			ldo = s
		}
	}
	if sc.LoadPower <= ldo.LoadPower {
		t.Errorf("SC path %.4g <= LDO path %.4g; allocator ignored efficiency",
			sc.LoadPower, ldo.LoadPower)
	}
	if sc.Efficiency <= ldo.Efficiency {
		t.Errorf("SC efficiency %.3f <= LDO %.3f at the allocated points", sc.Efficiency, ldo.Efficiency)
	}
}

func TestUtilities(t *testing.T) {
	if SqrtUtility(4) != 2 || SqrtUtility(-1) != 0 {
		t.Error("sqrt utility wrong")
	}
	if LinearUtility(3) != 3 || LinearUtility(-1) != 0 {
		t.Error("linear utility wrong")
	}
}

// Property: allocations never draw more than the budget and never deliver
// more than they draw, for random budgets and node voltages.
func TestQuickAllocationSafety(t *testing.T) {
	a, err := New(threeDomains(), WithQuantum(50e-6))
	if err != nil {
		t.Fatal(err)
	}
	f := func(vinRaw, budRaw uint16) bool {
		vin := 0.9 + float64(vinRaw)/65535*0.5
		budget := 2e-3 + float64(budRaw)/65535*30e-3
		alloc, err := a.Allocate(vin, budget)
		if err != nil {
			return errors.Is(err, ErrBudgetTooSmall)
		}
		if alloc.TotalDraw > budget*(1+1e-9) {
			return false
		}
		return alloc.TotalLoad <= alloc.TotalDraw+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the greedy result is within a small factor of a brute-force
// two-domain split.
func TestGreedyNearOptimalTwoDomains(t *testing.T) {
	ds := []Domain{
		{Name: "a", Reg: reg.NewSC(), Supply: 0.55, MaxPower: 10e-3, Weight: 1},
		{Name: "b", Reg: reg.NewBuck(), Supply: 0.60, MaxPower: 10e-3, Weight: 1},
	}
	a, err := New(ds, WithQuantum(10e-6))
	if err != nil {
		t.Fatal(err)
	}
	const vin, budget = 1.1, 9e-3
	alloc, err := a.Allocate(vin, budget)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over domain a's load share.
	best := 0.0
	for pa := 0.0; pa <= 10e-3; pa += 20e-6 {
		da := a.draw(ds[0], vin, pa)
		rest := budget - da
		if rest < 0 {
			continue
		}
		// Largest pb whose draw fits the remainder (draw is increasing).
		lo, hi := 0.0, 10e-3
		for k := 0; k < 40; k++ {
			mid := 0.5 * (lo + hi)
			if a.draw(ds[1], vin, mid) <= rest {
				lo = mid
			} else {
				hi = mid
			}
		}
		u := SqrtUtility(pa) + SqrtUtility(lo)
		if u > best {
			best = u
		}
	}
	if alloc.TotalUtility < 0.97*best {
		t.Errorf("greedy utility %.4g below 97%% of brute force %.4g", alloc.TotalUtility, best)
	}
}

func BenchmarkAllocate(b *testing.B) {
	a, err := New(threeDomains(), WithQuantum(50e-6))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := a.Allocate(1.1, 12e-3); err != nil {
			b.Fatal(err)
		}
	}
}
