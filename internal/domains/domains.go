// Package domains extends the holistic analysis to multi-domain
// power/energy management (a keyword of the paper): a fully integrated SoC
// carries several on-chip power domains — processor core, SRAM, radio/IO —
// each behind its own regulator fed from the shared harvester node. The
// allocation question is the multi-load version of the paper's Eq. 1-4:
// split the harvested budget across domains, accounting for each domain's
// converter efficiency at its operating point, to maximise total utility.
//
// Because converter efficiency depends on the delivered power, the problem
// is not a clean water-filling; the allocator uses greedy incremental
// allocation in small quanta on the marginal-utility-per-source-watt
// criterion, which is exact in the quantum limit for concave utilities.
package domains

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/reg"
)

// Errors returned by this package.
var (
	// ErrNoDomains indicates an allocator without domains.
	ErrNoDomains = errors.New("domains: no domains configured")

	// ErrBudgetTooSmall indicates that the source budget cannot cover the
	// domains' must-run floor powers.
	ErrBudgetTooSmall = errors.New("domains: budget below must-run floors")

	// ErrBadDomain indicates an invalid domain description.
	ErrBadDomain = errors.New("domains: invalid domain")
)

// Utility maps delivered load power (W) to a utility score. It must be
// non-decreasing and should be concave for the greedy allocator to be
// exact.
type Utility func(power float64) float64

// SqrtUtility is the default diminishing-returns utility.
func SqrtUtility(power float64) float64 {
	if power <= 0 {
		return 0
	}
	return math.Sqrt(power)
}

// LinearUtility values every delivered watt equally.
func LinearUtility(power float64) float64 {
	if power <= 0 {
		return 0
	}
	return power
}

// Domain is one on-chip power domain.
type Domain struct {
	// Name identifies the domain in reports ("core", "sram", "radio").
	Name string
	// Reg is the domain's converter from the shared harvester node.
	Reg reg.Regulator
	// Supply is the domain's regulated output voltage (V).
	Supply float64
	// MinPower is the must-run floor (W), e.g. SRAM retention. Allocated
	// unconditionally.
	MinPower float64
	// MaxPower caps the useful power (W).
	MaxPower float64
	// Weight scales the domain's utility in the objective. Zero means 1.
	Weight float64
	// Utility maps delivered power to value. Nil selects SqrtUtility.
	Utility Utility
}

// validate reports whether the domain is well-formed.
func (d Domain) validate() error {
	switch {
	case d.Reg == nil:
		return fmt.Errorf("%w: %s has no regulator", ErrBadDomain, d.Name)
	case d.Supply <= 0:
		return fmt.Errorf("%w: %s supply %g", ErrBadDomain, d.Name, d.Supply)
	case d.MinPower < 0 || d.MaxPower < d.MinPower:
		return fmt.Errorf("%w: %s power window [%g, %g]", ErrBadDomain, d.Name, d.MinPower, d.MaxPower)
	}
	return nil
}

func (d Domain) weight() float64 {
	if d.Weight == 0 {
		return 1
	}
	return d.Weight
}

func (d Domain) utility(p float64) float64 {
	if d.Utility == nil {
		return SqrtUtility(p)
	}
	return d.Utility(p)
}

// Share is one domain's slice of an allocation.
type Share struct {
	Name       string
	LoadPower  float64 // delivered to the domain (W)
	DrawPower  float64 // drawn from the harvester node (W)
	Efficiency float64 // conversion efficiency at this point
	Utility    float64 // weighted utility contribution
	Saturated  bool    // the domain hit MaxPower
}

// Allocation is the result of a budget split.
type Allocation struct {
	Shares       []Share
	TotalLoad    float64 // sum of delivered powers (W)
	TotalDraw    float64 // sum of source draws (W); <= budget
	TotalUtility float64
}

// Allocator splits a source budget across domains. Construct with New.
type Allocator struct {
	domains []Domain
	quantum float64 // allocation step (W)
}

// Option configures an Allocator.
type Option func(*Allocator)

// WithQuantum sets the greedy allocation step (W). Smaller is more exact
// and slower. The default is 10 uW.
func WithQuantum(watts float64) Option {
	return func(a *Allocator) { a.quantum = watts }
}

// New builds an allocator over the given domains.
func New(ds []Domain, opts ...Option) (*Allocator, error) {
	if len(ds) == 0 {
		return nil, ErrNoDomains
	}
	for _, d := range ds {
		if err := d.validate(); err != nil {
			return nil, err
		}
	}
	a := &Allocator{
		domains: append([]Domain(nil), ds...),
		quantum: 10e-6,
	}
	for _, opt := range opts {
		opt(a)
	}
	return a, nil
}

// draw returns the source power a domain needs to receive load power p from
// node voltage vin, +Inf when unreachable.
func (a *Allocator) draw(d Domain, vin, p float64) float64 {
	if p <= 0 {
		return 0
	}
	eta := d.Reg.Efficiency(vin, d.Supply, p)
	if eta <= 0 {
		return math.Inf(1)
	}
	return p / eta
}

// Allocate splits `budget` watts of source power, available at node voltage
// vin, across the domains. Must-run floors are funded first; the remainder
// goes greedily to the domain with the best marginal weighted utility per
// source watt. It returns ErrBudgetTooSmall when the floors alone exceed
// the budget.
func (a *Allocator) Allocate(vin, budget float64) (Allocation, error) {
	n := len(a.domains)
	loads := make([]float64, n)
	draws := make([]float64, n)

	// Fund the floors.
	used := 0.0
	for i, d := range a.domains {
		loads[i] = d.MinPower
		draws[i] = a.draw(d, vin, d.MinPower)
		if math.IsInf(draws[i], 1) {
			return Allocation{}, fmt.Errorf("%w: %s floor unreachable from %.3f V", ErrBudgetTooSmall, d.Name, vin)
		}
		used += draws[i]
	}
	if used > budget {
		return Allocation{}, fmt.Errorf("%w: floors draw %.4g W of %.4g W", ErrBudgetTooSmall, used, budget)
	}

	// Greedy marginal allocation with a jump ladder. Converters with fixed
	// losses make draw(p) non-convex near zero (an activation hump): the
	// first microwatt through an idle SC converter costs its entire fixed
	// switching power. Single-quantum greedy would starve such domains, so
	// every iteration also considers geometric multi-quantum jumps and
	// scores each candidate by average utility gained per source watt.
	ladder := []float64{1, 8, 64, 512, 4096}
	for {
		bestDomain, bestStep, bestGain := -1, 0.0, 0.0
		for i, d := range a.domains {
			for _, mult := range ladder {
				step := a.quantum * mult
				if loads[i]+step > d.MaxPower {
					step = d.MaxPower - loads[i]
				}
				if step <= 0 {
					continue
				}
				newDraw := a.draw(d, vin, loads[i]+step)
				cost := newDraw - draws[i]
				if math.IsInf(newDraw, 1) || cost <= 0 || used+cost > budget {
					continue
				}
				gain := d.weight() * (d.utility(loads[i]+step) - d.utility(loads[i])) / cost
				if gain > bestGain {
					bestDomain, bestStep, bestGain = i, step, gain
				}
			}
		}
		if bestDomain < 0 {
			break
		}
		loads[bestDomain] += bestStep
		newDraw := a.draw(a.domains[bestDomain], vin, loads[bestDomain])
		used += newDraw - draws[bestDomain]
		draws[bestDomain] = newDraw
	}

	alloc := Allocation{Shares: make([]Share, n)}
	for i, d := range a.domains {
		eta := 0.0
		if draws[i] > 0 {
			eta = loads[i] / draws[i]
		}
		u := d.weight() * d.utility(loads[i])
		alloc.Shares[i] = Share{
			Name:       d.Name,
			LoadPower:  loads[i],
			DrawPower:  draws[i],
			Efficiency: eta,
			Utility:    u,
			Saturated:  loads[i]+a.quantum > d.MaxPower,
		}
		alloc.TotalLoad += loads[i]
		alloc.TotalDraw += draws[i]
		alloc.TotalUtility += u
	}
	return alloc, nil
}

// Sweep evaluates the allocation across budgets, for plotting utility
// curves and finding the budget at which domains saturate.
func (a *Allocator) Sweep(vin float64, budgets []float64) ([]Allocation, error) {
	out := make([]Allocation, 0, len(budgets))
	for _, b := range budgets {
		alloc, err := a.Allocate(vin, b)
		if err != nil {
			return nil, fmt.Errorf("budget %.4g W: %w", b, err)
		}
		out = append(out, alloc)
	}
	return out, nil
}
