// Package scenario is the declarative environment layer of the
// reproduction (ROADMAP item 2): one JSON document composes an energy
// source (sky, bench light, kinetic impulse train, indoor lighting ladder,
// or a recorded trace), a workload (the deadline job plus stochastic event
// arrivals feeding the radio), and a run geometry (single node or a small
// fleet), and the engine runs it through the transient circuit simulator.
// The paper evaluates under a handful of static light levels and hand-made
// dimming events; a scenario is the statistically plausible deployment a
// battery-less node actually faces, written down in a reviewable file.
//
// Determinism contract: a scenario run is a pure function of its Spec. All
// randomness (source rendering, per-node trims, event arrivals) derives
// from the spec seed via FNV-1a stream separation (fault.StreamSeed), and
// all aggregation happens in node-ID order, so report bytes are identical
// across worker counts, batch sizes and repeated runs. The canonical
// String() form — compact JSON with defaults resolved — is byte-stable and
// doubles as a cache key, like fleet.Spec.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// Errors returned by this package.
var (
	// ErrBadSpec indicates a scenario spec that fails validation.
	ErrBadSpec = errors.New("scenario: invalid spec")
)

// SpecVersion is the current spec schema version.
const SpecVersion = 1

// Source kinds.
const (
	SourceBench   = "bench"    // constant bench light
	SourceClear   = "clearsky" // deterministic daylight half-sine
	SourceCloudy  = "cloudy"   // cloud-modulated constant light
	SourceKinetic = "kinetic"  // piezo impulse train (internal/kinetic)
	SourceIndoor  = "indoor"   // staged indoor lighting (internal/indoor)
	SourceTrace   = "trace"    // recorded trace replay (ReadTrace)
)

// Arrival processes.
const (
	ArrivalsNone    = "none"
	ArrivalsPoisson = "poisson"
	ArrivalsGamma   = "gamma"
	ArrivalsWeibull = "weibull"
)

// Source describes the energy environment. Kind selects the model; the
// other fields parameterise it (unused fields must stay zero).
type Source struct {
	Kind string `json:"kind"`

	// Level is the constant equivalent irradiance of bench, and the
	// pre-cloud envelope of cloudy.
	Level float64 `json:"level,omitempty"`

	// Clear-sky envelope (clearsky): a half-sine peaking at Peak between
	// SunriseFrac and SunsetFrac of the horizon.
	Peak        float64 `json:"peak,omitempty"`
	SunriseFrac float64 `json:"sunrise_frac,omitempty"`
	SunsetFrac  float64 `json:"sunset_frac,omitempty"`

	// Cloud process (cloudy): Markov dwell times and the in-cloud
	// attenuation's mean/fluctuation (internal/weather).
	DwellClearS  float64 `json:"dwell_clear_s,omitempty"`
	DwellCloudyS float64 `json:"dwell_cloudy_s,omitempty"`
	AttenMean    float64 `json:"atten_mean,omitempty"`
	AttenSigma   float64 `json:"atten_sigma,omitempty"`

	// Kinetic impulse train (kinetic): arrival rate, per-impulse peak and
	// the transducer relaxation time (internal/kinetic).
	RateHz  float64 `json:"rate_hz,omitempty"`
	Impulse float64 `json:"impulse,omitempty"`
	DecayS  float64 `json:"decay_s,omitempty"`

	// Jitter is per-impulse amplitude jitter (kinetic) or within-stage
	// flicker (indoor), a fraction in [0, 1).
	Jitter float64 `json:"jitter,omitempty"`

	// StartStage is the initial rung of the indoor lighting ladder.
	StartStage int `json:"start_stage,omitempty"`

	// Path is the recorded trace file to replay (trace).
	Path string `json:"path,omitempty"`
}

// Arrivals describes the stochastic event process driving the radio: each
// arrival transmits one packet.
type Arrivals struct {
	Process string `json:"process"`

	// RateHz is the mean event rate (1/s).
	RateHz float64 `json:"rate_hz,omitempty"`

	// Shape is the gamma/weibull shape parameter k; inter-arrival scale is
	// always chosen so the mean rate stays RateHz. k < 1 gives burstier
	// trains than Poisson, k > 1 more regular ones.
	Shape float64 `json:"shape,omitempty"`

	// PayloadBytes is the per-event packet payload.
	PayloadBytes int `json:"payload_bytes,omitempty"`
}

// Workload describes what the node computes and transmits.
type Workload struct {
	// JobCycles is the recognition job's clock-cycle budget.
	JobCycles float64 `json:"job_cycles"`
	// DeadlineFrac places the job deadline at this fraction of the horizon.
	DeadlineFrac float64 `json:"deadline_frac"`
	// Sprint is the paper's sprint factor in [0, 1).
	Sprint float64 `json:"sprint"`
	// AuxW is the always-on peripheral draw (W).
	AuxW float64 `json:"aux_w"`
	// Arrivals is the event process feeding the radio.
	Arrivals Arrivals `json:"arrivals"`
}

// Geometry describes how many nodes run and on what clock.
type Geometry struct {
	Nodes    int     `json:"nodes"`
	HorizonS float64 `json:"horizon_s"`
	StepS    float64 `json:"step_s"`
}

// Spec is the canonical, fully-resolved description of one scenario run.
// It contains only comparable scalar fields, so two parsed specs compare
// with == and the String() form is byte-stable.
type Spec struct {
	Version  int      `json:"version"`
	Name     string   `json:"name,omitempty"`
	Seed     int64    `json:"seed"`
	Source   Source   `json:"source"`
	Workload Workload `json:"workload"`
	Geometry Geometry `json:"geometry"`
}

// Defaults resolved into zero fields by ParseScenario.
const (
	DefaultNodes        = 1
	DefaultHorizon      = 2.0  // s
	DefaultStep         = 5e-5 // s
	DefaultJobCycles    = 2e7  // clock cycles
	DefaultDeadlineFrac = 0.8
	DefaultSprint       = 0.2
	DefaultAuxW         = 0.2e-3 // W
	DefaultArrivalRate  = 4.0    // events/s
	DefaultArrivalShape = 2.0    // gamma/weibull shape k
	DefaultPayloadBytes = 12
	DefaultLevel        = 1.0 // bench / cloudy envelope
	DefaultSunriseFrac  = 0.1
	DefaultSunsetFrac   = 0.9
)

// MaxNodes bounds the population a single spec may request; larger studies
// belong to the fleet engine's epoch scheduler.
const MaxNodes = 100000

// String renders the canonical compact-JSON form: defaults resolved,
// struct field order fixed. Parsing the result yields the identical spec,
// so canonical strings are stable cache keys.
func (s Spec) String() string {
	b, err := json.Marshal(s)
	if err != nil { // unreachable: Spec holds only scalars
		return fmt.Sprintf("scenario-spec-error: %v", err)
	}
	return string(b)
}

// ParseScenario parses and validates a JSON scenario spec. Unknown fields
// and trailing garbage are errors; omitted fields take the package
// defaults, which are resolved into the returned Spec so its String() form
// is canonical.
func ParseScenario(data []byte) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("%w: trailing data after the spec document", ErrBadSpec)
	}
	spec.applyDefaults()
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// applyDefaults resolves zero fields to the package defaults.
func (s *Spec) applyDefaults() {
	if s.Version == 0 {
		s.Version = SpecVersion
	}
	if s.Source.Kind == "" {
		s.Source.Kind = SourceBench
	}
	switch s.Source.Kind {
	case SourceBench:
		if s.Source.Level == 0 {
			s.Source.Level = DefaultLevel
		}
	case SourceClear:
		if s.Source.Peak == 0 {
			s.Source.Peak = DefaultLevel
		}
		if s.Source.SunriseFrac == 0 {
			s.Source.SunriseFrac = DefaultSunriseFrac
		}
		if s.Source.SunsetFrac == 0 {
			s.Source.SunsetFrac = DefaultSunsetFrac
		}
	case SourceCloudy:
		if s.Source.Level == 0 {
			s.Source.Level = DefaultLevel
		}
		if s.Source.DwellClearS == 0 {
			s.Source.DwellClearS = 2.0
		}
		if s.Source.DwellCloudyS == 0 {
			s.Source.DwellCloudyS = 1.0
		}
		if s.Source.AttenMean == 0 {
			s.Source.AttenMean = 0.35
		}
		if s.Source.AttenSigma == 0 {
			s.Source.AttenSigma = 0.10
		}
	case SourceKinetic:
		if s.Source.RateHz == 0 {
			s.Source.RateHz = 2.0
		}
		if s.Source.Impulse == 0 {
			s.Source.Impulse = 0.20
		}
		if s.Source.DecayS == 0 {
			s.Source.DecayS = 0.12
		}
		if s.Source.Jitter == 0 {
			s.Source.Jitter = 0.25
		}
	case SourceIndoor:
		if s.Source.Jitter == 0 {
			s.Source.Jitter = 0.05
		}
		if s.Source.StartStage == 0 {
			s.Source.StartStage = 2
		}
	}
	if s.Workload.JobCycles == 0 {
		s.Workload.JobCycles = DefaultJobCycles
	}
	if s.Workload.DeadlineFrac == 0 {
		s.Workload.DeadlineFrac = DefaultDeadlineFrac
	}
	if s.Workload.Sprint == 0 {
		s.Workload.Sprint = DefaultSprint
	}
	if s.Workload.AuxW == 0 {
		s.Workload.AuxW = DefaultAuxW
	}
	if s.Workload.Arrivals.Process == "" {
		s.Workload.Arrivals.Process = ArrivalsPoisson
	}
	if s.Workload.Arrivals.Process != ArrivalsNone {
		if s.Workload.Arrivals.RateHz == 0 {
			s.Workload.Arrivals.RateHz = DefaultArrivalRate
		}
		if s.Workload.Arrivals.PayloadBytes == 0 {
			s.Workload.Arrivals.PayloadBytes = DefaultPayloadBytes
		}
	}
	switch s.Workload.Arrivals.Process {
	case ArrivalsGamma, ArrivalsWeibull:
		if s.Workload.Arrivals.Shape == 0 {
			s.Workload.Arrivals.Shape = DefaultArrivalShape
		}
	}
	if s.Geometry.Nodes == 0 {
		s.Geometry.Nodes = DefaultNodes
	}
	if s.Geometry.HorizonS == 0 {
		s.Geometry.HorizonS = DefaultHorizon
	}
	if s.Geometry.StepS == 0 {
		s.Geometry.StepS = DefaultStep
	}
}

// posFinite reports whether x is strictly positive and finite. `x > 0` is
// false for NaN and the Inf check closes the other door ParseFloat and
// JSON-decoded numbers leave open — the same NaN trap fleet.Spec.validate
// fell into.
func posFinite(x float64) bool {
	return x > 0 && !math.IsInf(x, 1)
}

// finiteFrac reports whether x is a finite fraction in [0, 1).
func finiteFrac(x float64) bool {
	return x >= 0 && x < 1 && !math.IsNaN(x)
}

// Validate rejects specs that cannot run. ParseScenario calls it; callers
// building a Spec by hand should too.
func (s Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("%w: version %d (this build understands %d)", ErrBadSpec, s.Version, SpecVersion)
	}
	if err := s.Source.validate(); err != nil {
		return err
	}
	if err := s.Workload.validate(); err != nil {
		return err
	}
	g := s.Geometry
	if g.Nodes < 1 || g.Nodes > MaxNodes {
		return fmt.Errorf("%w: geometry.nodes %d outside [1, %d]", ErrBadSpec, g.Nodes, MaxNodes)
	}
	if !posFinite(g.HorizonS) || !posFinite(g.StepS) || g.StepS > g.HorizonS {
		return fmt.Errorf("%w: geometry horizon %g and step %g must be positive, finite, step <= horizon",
			ErrBadSpec, g.HorizonS, g.StepS)
	}
	return nil
}

// validate checks the source block for its kind, including that fields of
// other kinds stay zero (so the canonical form is unambiguous).
func (src Source) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: source %s: %s", ErrBadSpec, src.Kind, fmt.Sprintf(format, args...))
	}
	switch src.Kind {
	case SourceBench:
		if !posFinite(src.Level) || src.Level > 10 {
			return bad("level %g outside (0, 10]", src.Level)
		}
	case SourceClear:
		if !posFinite(src.Peak) || src.Peak > 10 {
			return bad("peak %g outside (0, 10]", src.Peak)
		}
		if !finiteFrac(src.SunriseFrac) || !(src.SunsetFrac > src.SunriseFrac) || src.SunsetFrac > 1 {
			return bad("need 0 <= sunrise_frac < sunset_frac <= 1, got %g and %g", src.SunriseFrac, src.SunsetFrac)
		}
	case SourceCloudy:
		if !posFinite(src.Level) || src.Level > 10 {
			return bad("level %g outside (0, 10]", src.Level)
		}
		if !posFinite(src.DwellClearS) || !posFinite(src.DwellCloudyS) {
			return bad("dwell times %g/%g must be positive and finite", src.DwellClearS, src.DwellCloudyS)
		}
		if !posFinite(src.AttenMean) || src.AttenMean > 1 || !finiteFrac(src.AttenSigma) {
			return bad("attenuation mean %g must be in (0, 1] and sigma %g in [0, 1)", src.AttenMean, src.AttenSigma)
		}
	case SourceKinetic:
		if !posFinite(src.RateHz) || !posFinite(src.Impulse) || !posFinite(src.DecayS) {
			return bad("rate_hz, impulse and decay_s must be positive and finite (%g, %g, %g)",
				src.RateHz, src.Impulse, src.DecayS)
		}
		if !finiteFrac(src.Jitter) {
			return bad("jitter %g outside [0, 1)", src.Jitter)
		}
	case SourceIndoor:
		if !finiteFrac(src.Jitter) {
			return bad("jitter %g outside [0, 1)", src.Jitter)
		}
		if src.StartStage < 0 || src.StartStage > 3 {
			return bad("start_stage %d outside the 4-rung default ladder", src.StartStage)
		}
	case SourceTrace:
		if src.Path == "" {
			return bad("path is required")
		}
	default:
		return fmt.Errorf("%w: unknown source kind %q (want %s, %s, %s, %s, %s or %s)", ErrBadSpec,
			src.Kind, SourceBench, SourceClear, SourceCloudy, SourceKinetic, SourceIndoor, SourceTrace)
	}
	return nil
}

// validate checks the workload block.
func (wl Workload) validate() error {
	if !posFinite(wl.JobCycles) {
		return fmt.Errorf("%w: workload.job_cycles %g must be positive and finite", ErrBadSpec, wl.JobCycles)
	}
	if !(wl.DeadlineFrac > 0) || wl.DeadlineFrac > 1 || math.IsNaN(wl.DeadlineFrac) {
		return fmt.Errorf("%w: workload.deadline_frac %g outside (0, 1]", ErrBadSpec, wl.DeadlineFrac)
	}
	if !finiteFrac(wl.Sprint) {
		return fmt.Errorf("%w: workload.sprint %g outside [0, 1)", ErrBadSpec, wl.Sprint)
	}
	if wl.AuxW < 0 || math.IsNaN(wl.AuxW) || math.IsInf(wl.AuxW, 0) || wl.AuxW > 1 {
		return fmt.Errorf("%w: workload.aux_w %g outside [0, 1] W", ErrBadSpec, wl.AuxW)
	}
	ar := wl.Arrivals
	switch ar.Process {
	case ArrivalsNone:
		if ar.RateHz != 0 || ar.Shape != 0 || ar.PayloadBytes != 0 {
			return fmt.Errorf("%w: arrivals %q takes no rate/shape/payload", ErrBadSpec, ar.Process)
		}
	case ArrivalsPoisson:
		if ar.Shape != 0 {
			return fmt.Errorf("%w: arrivals shape only applies to %s and %s", ErrBadSpec, ArrivalsGamma, ArrivalsWeibull)
		}
	case ArrivalsGamma, ArrivalsWeibull:
		if !posFinite(ar.Shape) || ar.Shape > 100 {
			return fmt.Errorf("%w: arrivals.shape %g outside (0, 100]", ErrBadSpec, ar.Shape)
		}
	default:
		return fmt.Errorf("%w: unknown arrivals process %q (want %s, %s, %s or %s)", ErrBadSpec,
			ar.Process, ArrivalsNone, ArrivalsPoisson, ArrivalsGamma, ArrivalsWeibull)
	}
	if ar.Process != ArrivalsNone {
		if !posFinite(ar.RateHz) || ar.RateHz > 1e6 {
			return fmt.Errorf("%w: arrivals.rate_hz %g outside (0, 1e6]", ErrBadSpec, ar.RateHz)
		}
		if ar.PayloadBytes < 0 || ar.PayloadBytes > 1024 {
			return fmt.Errorf("%w: arrivals.payload_bytes %d outside [0, 1024]", ErrBadSpec, ar.PayloadBytes)
		}
	}
	return nil
}
