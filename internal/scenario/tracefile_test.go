package scenario

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/weather"
)

// TestTraceFileRoundTrip: write → read preserves the step and every sample
// bit-for-bit, including values with no short decimal form.
func TestTraceFileRoundTrip(t *testing.T) {
	tr := &weather.Trace{Step: 5e-5, Samples: []float64{
		0, 1, 0.1 + 0.2, math.Pi, 1.0 / 3.0, math.SmallestNonzeroFloat64, 1e30,
	}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != tr.Step {
		t.Errorf("step %v != %v", got.Step, tr.Step)
	}
	if !reflect.DeepEqual(got.Samples, tr.Samples) {
		t.Errorf("samples changed across the round trip:\n%v\n%v", got.Samples, tr.Samples)
	}

	path := filepath.Join(t.TempDir(), "t.json")
	if err := WriteTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, got) {
		t.Error("file round trip differs from stream round trip")
	}
}

// TestWriteTraceRejects: the encoder refuses traces that could not be
// replayed.
func TestWriteTraceRejects(t *testing.T) {
	for name, tr := range map[string]*weather.Trace{
		"nil":       nil,
		"empty":     {Step: 0.1},
		"zero step": {Step: 0, Samples: []float64{1}},
		"NaN step":  {Step: math.NaN(), Samples: []float64{1}},
	} {
		if err := WriteTrace(&bytes.Buffer{}, tr); !errors.Is(err, ErrBadTraceFile) {
			t.Errorf("%s: got %v, want ErrBadTraceFile", name, err)
		}
	}
}

// TestReadTraceRejects: decode-time validation. The zero/negative-step
// rejection is the satellite regression: before weather.Trace.At grew its
// degenerate-step guard, a zero-step trace made At() divide by zero.
func TestReadTraceRejects(t *testing.T) {
	for name, text := range map[string]string{
		"not json":        `nope`,
		"wrong format":    `{"format":"other","version":1,"step_s":0.1,"samples":[1]}`,
		"wrong version":   fmt.Sprintf(`{"format":%q,"version":2,"step_s":0.1,"samples":[1]}`, TraceFormat),
		"zero step":       fmt.Sprintf(`{"format":%q,"version":1,"step_s":0,"samples":[1]}`, TraceFormat),
		"negative step":   fmt.Sprintf(`{"format":%q,"version":1,"step_s":-0.1,"samples":[1]}`, TraceFormat),
		"no samples":      fmt.Sprintf(`{"format":%q,"version":1,"step_s":0.1,"samples":[]}`, TraceFormat),
		"negative sample": fmt.Sprintf(`{"format":%q,"version":1,"step_s":0.1,"samples":[1,-2]}`, TraceFormat),
		"unknown field":   fmt.Sprintf(`{"format":%q,"version":1,"step_s":0.1,"samples":[1],"extra":1}`, TraceFormat),
	} {
		if _, err := ReadTrace(strings.NewReader(text)); !errors.Is(err, ErrBadTraceFile) {
			t.Errorf("%s: got %v, want ErrBadTraceFile", name, err)
		}
	}
	if _, err := ReadTraceFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
