package scenario

// Stochastic event-arrival processes à la workload generators: the spec
// names a renewal process (poisson, gamma, weibull) and a mean rate, and
// the engine draws inter-arrival times from it. The scale of each family
// is always chosen so the mean inter-arrival stays 1/rate — the shape knob
// then trades burstiness alone: gamma/weibull shape k < 1 clusters events
// (battery-less worst case: a burst of transmissions on a drained
// capacitor), k > 1 spaces them towards a metronome, and k = 1 degenerates
// to Poisson exactly.

import (
	"math"
	"math/rand"
)

// arrivalTimes draws the event times in [0, horizon) for one node's
// renewal process. A nil process ("none") returns no events.
func arrivalTimes(rng *rand.Rand, ar Arrivals, horizon float64) []float64 {
	if ar.Process == ArrivalsNone {
		return nil
	}
	draw := interArrival(ar)
	var times []float64
	for t := draw(rng); t < horizon; t += draw(rng) {
		times = append(times, t)
	}
	return times
}

// interArrival returns the inter-arrival sampler of the process, with the
// scale fixed so the mean is 1/rate.
func interArrival(ar Arrivals) func(*rand.Rand) float64 {
	mean := 1 / ar.RateHz
	switch ar.Process {
	case ArrivalsGamma:
		k := ar.Shape
		scale := mean / k // gamma mean = k * scale
		return func(rng *rand.Rand) float64 { return scale * gammaDraw(rng, k) }
	case ArrivalsWeibull:
		k := ar.Shape
		scale := mean / math.Gamma(1+1/k) // weibull mean = scale * Γ(1+1/k)
		return func(rng *rand.Rand) float64 {
			// Inverse-CDF: U in [0, 1) keeps 1-U in (0, 1], so the log is
			// finite and the draw non-negative.
			return scale * math.Pow(-math.Log(1-rng.Float64()), 1/k)
		}
	default: // ArrivalsPoisson
		return func(rng *rand.Rand) float64 { return mean * rng.ExpFloat64() }
	}
}

// gammaDraw samples a standard Gamma(k, 1) variate with Marsaglia-Tsang
// squeeze rejection; shapes below one use the Gamma(k+1) boost followed by
// the U^(1/k) correction.
func gammaDraw(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		// rand.Float64 can return 0; Pow(0, 1/k) = 0 then, a legal (zero)
		// inter-arrival rather than a NaN.
		return gammaDraw(rng, k+1) * math.Pow(rng.Float64(), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
