package scenario

// Source rendering: every kind compiles to one sampled *weather.Trace at
// the geometry's resolution, so the circuit simulator sees a uniform
// Irradiance interface whether the energy arrives from a sky, a bench
// lamp, a piezo transducer, an office lighting ladder or a recorded file.
// The render is seeded from StreamSeed(seed, "scenario", "source") — one
// stream, shared by the whole population: the environment is the scenario,
// per-node diversity comes from the site trim, not from private skies.

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/indoor"
	"repro/internal/kinetic"
	"repro/internal/weather"
)

// SourceTrace renders (or, for kind=trace, loads) the spec's light trace.
// The result is shared read-only by every node of the run; recording it
// with WriteTrace and re-running with kind=trace reproduces the original
// run byte for byte.
func (s Spec) SourceTrace() (*weather.Trace, error) {
	src := s.Source
	horizon, step := s.Geometry.HorizonS, s.Geometry.StepS
	rng := rand.New(rand.NewSource(fault.StreamSeed(s.Seed, "scenario", "source")))
	switch src.Kind {
	case SourceBench:
		tr := weather.NewTrace(horizon, step)
		for i := range tr.Samples {
			tr.Samples[i] = src.Level
		}
		return tr, nil
	case SourceClear:
		return weather.ClearSky(horizon, step,
			src.SunriseFrac*horizon, src.SunsetFrac*horizon, src.Peak)
	case SourceCloudy:
		gen := weather.NewGenerator(rng,
			weather.WithDwellTimes(src.DwellClearS, src.DwellCloudyS),
			weather.WithCloudAttenuation(src.AttenMean, src.AttenSigma),
		)
		tr, err := gen.Trace(horizon, step, nil)
		if err != nil {
			return nil, err
		}
		if src.Level != 1 {
			for i := range tr.Samples {
				tr.Samples[i] *= src.Level
			}
		}
		return tr, nil
	case SourceKinetic:
		h := kinetic.New(
			kinetic.WithRate(src.RateHz),
			kinetic.WithImpulse(src.Impulse),
			kinetic.WithDecay(src.DecayS),
			kinetic.WithJitter(src.Jitter),
		)
		return h.Trace(rng, horizon, step)
	case SourceIndoor:
		env := indoor.New(
			indoor.WithJitter(src.Jitter),
			indoor.WithStartStage(src.StartStage),
		)
		return env.Trace(rng, horizon, step)
	case SourceTrace:
		return ReadTraceFile(src.Path)
	default:
		return nil, fmt.Errorf("%w: unknown source kind %q", ErrBadSpec, src.Kind)
	}
}
