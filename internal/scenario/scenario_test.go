package scenario

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// demoSpec composes a kinetic harvester with Poisson radio arrivals over a
// small population — the acceptance scenario of the determinism criteria.
const demoSpec = `{"name":"demo","seed":9,` +
	`"source":{"kind":"kinetic","rate_hz":8,"impulse":0.5,"decay_s":0.2},` +
	`"workload":{"job_cycles":5e6,"aux_w":5e-5},"geometry":{"nodes":4,"horizon_s":1,"step_s":1e-4}}`

// render runs the spec text and returns the report bytes.
func render(t *testing.T, specText string, workers, batch int) []byte {
	t.Helper()
	spec, err := ParseScenario([]byte(specText))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Spec: spec, Workers: workers, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Report(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWorkerBatchParity is the scenario half of the repo's signature
// invariant: report bytes must not depend on the worker count or the batch
// size.
func TestWorkerBatchParity(t *testing.T) {
	ref := render(t, demoSpec, 1, 0)
	for _, workers := range []int{1, 2, 8} {
		for _, batch := range []int{0, 1, 3, 64} {
			if got := render(t, demoSpec, workers, batch); !bytes.Equal(got, ref) {
				t.Errorf("workers=%d batch=%d: report differs from the scalar reference:\n%s\n-- vs --\n%s",
					workers, batch, got, ref)
			}
		}
	}
}

// TestRunDeterminismBySeed: same spec twice is byte-identical; a different
// seed changes the bytes.
func TestRunDeterminismBySeed(t *testing.T) {
	a := render(t, demoSpec, 4, 0)
	b := render(t, demoSpec, 4, 0)
	if !bytes.Equal(a, b) {
		t.Error("same-spec runs differ")
	}
	other := render(t, strings.Replace(demoSpec, `"seed":9`, `"seed":10`, 1), 4, 0)
	if bytes.Equal(a, other) {
		t.Error("different seeds produced identical reports")
	}
}

// TestStringRoundTrip: for a swath of specs, ParseScenario(spec.String())
// is the identity and String() is stable across the round trip — the
// property that makes canonical strings safe cache keys.
func TestStringRoundTrip(t *testing.T) {
	for _, text := range []string{
		`{}`,
		demoSpec,
		`{"source":{"kind":"indoor","start_stage":1},"workload":{"arrivals":{"process":"none"}}}`,
		`{"source":{"kind":"cloudy","level":0.5},"workload":{"arrivals":{"process":"weibull","shape":0.8}}}`,
		`{"source":{"kind":"clearsky","peak":0.9,"sunrise_frac":0.2,"sunset_frac":0.7}}`,
		`{"source":{"kind":"trace","path":"recorded.json"}}`,
		`{"workload":{"arrivals":{"process":"gamma","rate_hz":12,"payload_bytes":64}}}`,
	} {
		spec, err := ParseScenario([]byte(text))
		if err != nil {
			t.Fatalf("ParseScenario(%s): %v", text, err)
		}
		back, err := ParseScenario([]byte(spec.String()))
		if err != nil {
			t.Fatalf("reparse of %q: %v", spec.String(), err)
		}
		if back != spec {
			t.Errorf("round trip changed the spec:\n%+v\n%+v", spec, back)
		}
		if back.String() != spec.String() {
			t.Errorf("canonical form unstable: %q != %q", back.String(), spec.String())
		}
	}
}

// TestParseScenarioRejects covers the front-door validation.
func TestParseScenarioRejects(t *testing.T) {
	for _, bad := range []string{
		``,
		`not json`,
		`{"bogus":1}`,                  // unknown field
		`{} {}`,                        // trailing document
		`{"version":99}`,               // future schema
		`{"source":{"kind":"fusion"}}`, // unknown kind
		`{"source":{"kind":"bench","level":-1}}`,
		`{"source":{"kind":"bench","level":1e30}}`,
		`{"source":{"kind":"trace"}}`, // missing path
		`{"source":{"kind":"clearsky","sunrise_frac":0.9,"sunset_frac":0.2}}`,
		`{"source":{"kind":"kinetic","jitter":1.5}}`,
		`{"source":{"kind":"indoor","start_stage":9}}`,
		`{"workload":{"job_cycles":-5}}`,
		`{"workload":{"deadline_frac":1.5}}`,
		`{"workload":{"arrivals":{"process":"uniform"}}}`,
		`{"workload":{"arrivals":{"process":"poisson","shape":2}}}`,
		`{"workload":{"arrivals":{"process":"none","rate_hz":3}}}`,
		`{"workload":{"arrivals":{"process":"gamma","payload_bytes":4096}}}`,
		`{"geometry":{"nodes":-1}}`,
		`{"geometry":{"nodes":1000000000}}`,
		`{"geometry":{"horizon_s":-2}}`,
		`{"geometry":{"horizon_s":0.001,"step_s":1}}`, // step > horizon
	} {
		if _, err := ParseScenario([]byte(bad)); err == nil {
			t.Errorf("ParseScenario(%s) accepted", bad)
		} else if !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseScenario(%s) returned %v, want ErrBadSpec", bad, err)
		}
	}
}

// TestValidateRejectsNaN: JSON cannot spell NaN/Inf, but a hand-built Spec
// can — Validate must catch what ParseScenario never sees. This is the
// same `NaN <= 0` trap the fleet spec fix closed.
func TestValidateRejectsNaN(t *testing.T) {
	base := func() Spec {
		spec, err := ParseScenario([]byte(demoSpec))
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	for name, mutate := range map[string]func(*Spec){
		"NaN horizon":  func(s *Spec) { s.Geometry.HorizonS = math.NaN() },
		"Inf horizon":  func(s *Spec) { s.Geometry.HorizonS = math.Inf(1) },
		"NaN step":     func(s *Spec) { s.Geometry.StepS = math.NaN() },
		"NaN cycles":   func(s *Spec) { s.Workload.JobCycles = math.NaN() },
		"NaN aux":      func(s *Spec) { s.Workload.AuxW = math.NaN() },
		"NaN rate":     func(s *Spec) { s.Source.RateHz = math.NaN() },
		"NaN arr rate": func(s *Spec) { s.Workload.Arrivals.RateHz = math.NaN() },
		"NaN deadline": func(s *Spec) { s.Workload.DeadlineFrac = math.NaN() },
		"NaN sprint":   func(s *Spec) { s.Workload.Sprint = math.NaN() },
	} {
		spec := base()
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestRecordReplayByteIdentity is the regression-pinning property the
// trace format exists for: record the demo scenario's rendered source,
// re-run the same spec with the source swapped for the recording, and the
// report bytes must be identical.
func TestRecordReplayByteIdentity(t *testing.T) {
	spec, err := ParseScenario([]byte(demoSpec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Spec: spec, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var original bytes.Buffer
	if err := rep.Report(&original); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "recorded.json")
	if err := WriteTraceFile(path, rep.SourceSamples()); err != nil {
		t.Fatal(err)
	}

	replay := spec
	replay.Source = Source{Kind: SourceTrace, Path: path}
	rep2, err := Run(Config{Spec: replay, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var replayed bytes.Buffer
	if err := rep2.Report(&replayed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(original.Bytes(), replayed.Bytes()) {
		t.Errorf("replayed report differs from the original:\n%s\n-- vs --\n%s",
			replayed.String(), original.String())
	}
}

// TestTraceDeterminism checks the scenario.* event stream: valid events
// and byte-level independence from the worker count and batch size.
func TestTraceDeterminism(t *testing.T) {
	record := func(workers, batch int) []trace.Event {
		spec, err := ParseScenario([]byte(demoSpec))
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder()
		if _, err := Run(Config{Spec: spec, Workers: workers, Batch: batch, Tracer: rec}); err != nil {
			t.Fatal(err)
		}
		return rec.Events()
	}
	ref := record(1, 0)
	if err := trace.ValidateAll(ref); err != nil {
		t.Fatal(err)
	}
	if len(ref) < 2 {
		t.Fatalf("only %d events recorded", len(ref))
	}
	if got := record(8, 1); !reflect.DeepEqual(got, ref) {
		t.Error("trace events differ between workers=1 and workers=8/batch=1")
	}
}

// TestRunCancellation: a cancelled context aborts the run with the
// context's error instead of simulating to the horizon.
func TestRunCancellation(t *testing.T) {
	spec, err := ParseScenario([]byte(demoSpec))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(Config{Spec: spec, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}
}

// TestArrivalProcesses: every process is deterministic by seed and hits
// its configured mean rate within sampling tolerance; gamma/weibull shape
// below one produces burstier (higher-variance) trains than above one.
func TestArrivalProcesses(t *testing.T) {
	const horizon, rate = 2000.0, 5.0
	for _, process := range []string{ArrivalsPoisson, ArrivalsGamma, ArrivalsWeibull} {
		ar := Arrivals{Process: process, RateHz: rate}
		if process != ArrivalsPoisson {
			ar.Shape = 2
		}
		a := arrivalTimes(rand.New(rand.NewSource(3)), ar, horizon)
		b := arrivalTimes(rand.New(rand.NewSource(3)), ar, horizon)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different trains", process)
		}
		got := float64(len(a)) / horizon
		if got < 0.9*rate || got > 1.1*rate {
			t.Errorf("%s: rate %.2f events/s, want ~%g", process, got, rate)
		}
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				t.Fatalf("%s: arrivals not sorted at %d", process, i)
			}
		}
	}
	if got := arrivalTimes(rand.New(rand.NewSource(1)), Arrivals{Process: ArrivalsNone}, horizon); got != nil {
		t.Errorf("none produced %d events", len(got))
	}
	// Burstiness orders with shape: squared coefficient of variation of the
	// inter-arrival times is > 1 below shape 1 and < 1 above it.
	cv2 := func(shape float64) float64 {
		times := arrivalTimes(rand.New(rand.NewSource(5)),
			Arrivals{Process: ArrivalsGamma, RateHz: rate, Shape: shape}, horizon)
		var gaps []float64
		for i := 1; i < len(times); i++ {
			gaps = append(gaps, times[i]-times[i-1])
		}
		var sum, sq float64
		for _, g := range gaps {
			sum += g
		}
		mean := sum / float64(len(gaps))
		for _, g := range gaps {
			sq += (g - mean) * (g - mean)
		}
		return sq / float64(len(gaps)) / (mean * mean)
	}
	if bursty, regular := cv2(0.4), cv2(4); bursty <= 1 || regular >= 1 {
		t.Errorf("gamma burstiness does not order with shape: cv2(0.4)=%.2f cv2(4)=%.2f", bursty, regular)
	}
}
