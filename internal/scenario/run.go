package scenario

// The scenario engine: render the source once, build one circuit lane per
// node in a contiguous batch slab, advance all lanes to the horizon on the
// worker pool, and aggregate in node-ID order. Unlike the fleet scheduler
// there are no epoch barriers — scenario populations are small and share
// one environment, so a single StepToContext pass per lane group is both
// the fastest and the simplest deterministic schedule.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/cap"
	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/prof"
	"repro/internal/pv"
	"repro/internal/radio"
	"repro/internal/reg"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/weather"
)

// Per-node population trims. Initial charge always varies per node; the
// site light scale (shading, wearer orientation) only spreads populations
// of more than one node, so a single-node scenario sees the source exactly
// as rendered — the property record/replay regression pinning relies on.
const (
	nodeCapacitance = 100e-6 // storage capacitance (F), the repo default
	nodeCapMax      = 2.0    // storage voltage rail (V)
	nodeV0Lo        = 0.9    // initial charge range (V)
	nodeV0Hi        = 1.7
	nodeSiteLo      = 0.35 // site light scale range for multi-node runs
	nodeSiteHi      = 1.0
)

// Config assembles a scenario run. Everything beyond Spec is an execution
// detail outside the determinism contract: the report bytes depend only on
// the Spec.
type Config struct {
	Spec Spec
	// Workers bounds the goroutines advancing nodes; < 1 means 1.
	Workers int
	// Batch bounds how many nodes one worker advances as a contiguous
	// circuit lane group; < 1 splits the population evenly across workers.
	Batch int
	// Tracer, when non-nil, receives the scenario.run span plus every
	// node's circuit events (tracks scn/NNNN), merged in node-ID order.
	Tracer trace.Tracer
	// Ctx, when non-nil, cancels the run between lanes.
	Ctx context.Context
	// Profile, when non-nil, collects an exact energy-and-time ledger per
	// node, folded in node-ID order under ProfileScope.
	Profile      *prof.Profile
	ProfileScope string
}

// nodeLabel is the per-node stream/track/profile label.
func nodeLabel(id int) string { return fmt.Sprintf("scn/%04d", id) }

// nodeTrims holds the per-node population draws.
type nodeTrims struct {
	v0   float64
	site float64
}

// trimsFor draws node id's trims from its private stream.
func trimsFor(spec Spec, id int) nodeTrims {
	rng := rand.New(rand.NewSource(fault.StreamSeed(spec.Seed, nodeLabel(id), "trim")))
	tr := nodeTrims{
		v0:   nodeV0Lo + (nodeV0Hi-nodeV0Lo)*rng.Float64(),
		site: 1.0,
	}
	if spec.Geometry.Nodes > 1 {
		tr.site = nodeSiteLo + (nodeSiteHi-nodeSiteLo)*rng.Float64()
	}
	return tr
}

// Run executes the scenario and returns its report.
func Run(cfg Config) (*Report, error) {
	spec := cfg.Spec
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.Geometry.Nodes
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Batch < 1 {
		cfg.Batch = (n + cfg.Workers - 1) / cfg.Workers
	}

	src, err := spec.SourceTrace()
	if err != nil {
		return nil, err
	}

	rep := &Report{Spec: spec, Nodes: make([]NodeResult, n)}
	rep.src = src
	rep.Source.Samples = len(src.Samples)
	rep.Source.StepS = src.Step
	rep.Source.DurationS = src.Duration()
	rep.Source.Min, rep.Source.Mean, rep.Source.Max = src.Stats()

	// Build the population. Everything here is a deterministic function of
	// (spec, node id): trims, arrivals and the shared source are all stream-
	// seeded, so build order cannot matter.
	tx := radio.New()
	cfgs := make([]circuit.Config, n)
	ctrls := make([]*sched.DeadlineController, n)
	var leds []prof.Ledger
	if cfg.Profile != nil {
		leds = make([]prof.Ledger, n)
	}
	var recs []*trace.Recorder
	if cfg.Tracer != nil {
		recs = make([]*trace.Recorder, n)
	}
	horizon, step := spec.Geometry.HorizonS, spec.Geometry.StepS
	for i := 0; i < n; i++ {
		trims := trimsFor(spec, i)
		storage, err := cap.New(nodeCapacitance, trims.v0, nodeCapMax)
		if err != nil {
			return nil, fmt.Errorf("scenario: node %d storage: %w", i, err)
		}
		times := arrivalTimes(
			rand.New(rand.NewSource(fault.StreamSeed(spec.Seed, nodeLabel(i), "arrivals"))),
			spec.Workload.Arrivals, horizon)
		packets := make([]radio.Packet, len(times))
		for k, t := range times {
			packets[k] = radio.Packet{Time: t, PayloadBytes: spec.Workload.Arrivals.PayloadBytes}
		}
		schedTx, err := tx.NewSchedule(packets)
		if err != nil {
			return nil, fmt.Errorf("scenario: node %d radio: %w", i, err)
		}
		aux := auxLoad(spec.Workload.AuxW, schedTx)
		ctrl := &sched.DeadlineController{
			Cycles:      spec.Workload.JobCycles,
			Deadline:    spec.Workload.DeadlineFrac * horizon,
			Sprint:      spec.Workload.Sprint,
			AllowBypass: true,
		}
		ctrls[i] = ctrl
		cfgs[i] = circuit.Config{
			Cell: pv.NewCell(),
			Proc: cpu.NewProcessor(),
			Reg:  reg.NewSC(),
			Cap:  storage,
			// The shared trace doubles as the event source (Irradiance is
			// derived from it), so nodes fast-forward through exactly-zero
			// spans — kinetic dead time, indoor lights-out — instead of
			// stepping them.
			IrradianceSource: siteSource(src, trims.site),
			Controller:       ctrl,
			AuxLoad:          aux,
			Step:             step,
			MaxTime:          horizon,
			JobCycles:        spec.Workload.JobCycles,
		}
		if leds != nil {
			cfgs[i].Ledger = &leds[i]
		}
		if recs != nil {
			recs[i] = trace.NewRecorder()
			cfgs[i].Tracer = recs[i]
			cfgs[i].TraceTrack = nodeLabel(i)
		}
		rep.Nodes[i] = NodeResult{
			ID: i, V0: trims.v0, Site: trims.site,
			Events: len(times), RadioEnergyJ: schedTx.TotalEnergy(),
		}
	}

	batch, err := circuit.NewBatch(cfgs)
	if err != nil {
		var le *circuit.LaneError
		if errors.As(err, &le) {
			return nil, fmt.Errorf("scenario: node %d circuit: %w", le.Lane, le.Err)
		}
		return nil, err
	}
	lanes := make([]*circuit.Simulator, n)
	for i := range lanes {
		lanes[i] = batch.Lane(i)
	}

	// Advance every lane to the horizon in contiguous windows on the worker
	// pool. Workers touch only their own window's lanes; all reads below
	// happen after the pool drains, in node-ID order.
	eff := cfg.Batch
	if eff > n {
		eff = n // mirror ForEachBatch's clamp so group indexing matches
	}
	groupErrs := make([]error, n)
	runner.ForEachBatch(n, eff, cfg.Workers, func(lo, hi int) {
		grp := circuit.Group(lanes[lo:hi])
		_, groupErrs[lo/eff] = grp.StepToContext(cfg.Ctx, horizon)
	})
	for g := 0; g < (n+eff-1)/eff; g++ {
		if err := groupErrs[g]; err != nil {
			var le *circuit.LaneError
			if errors.As(err, &le) {
				return nil, fmt.Errorf("scenario: node %d: %w", g*eff+le.Lane, le.Err)
			}
			return nil, fmt.Errorf("scenario: run cancelled: %w", err)
		}
	}

	// Aggregate in node-ID order.
	for i := range lanes {
		out := lanes[i].Outcome()
		nr := &rep.Nodes[i]
		nr.Completed = out.Completed
		nr.CompletionTimeS = out.CompletionTime
		nr.BrownedOut = out.BrownedOut
		nr.EnergyHarvestedJ = out.EnergyHarvested
		nr.EnergyAuxJ = out.EnergyAux
		nr.FinalVcapV = out.FinalCapVoltage
		rep.EnergyHarvested += out.EnergyHarvested
		rep.EnergyDelivered += out.EnergyDelivered
		rep.EnergyAux += out.EnergyAux
		rep.MeanFinalVcap += out.FinalCapVoltage
		rep.Events += nr.Events
		if out.Completed {
			rep.Completed++
		}
		if out.BrownedOut {
			rep.BrownedOut++
		}
	}
	rep.MeanFinalVcap /= float64(n)

	// Trace: the run span wraps every node's events, merged in node order,
	// so the stream is independent of workers and batch size.
	if cfg.Tracer != nil {
		trace.Begin(cfg.Tracer, "scenario.run", 0, "scenario", trace.Args{
			"nodes": n, "seed": spec.Seed, "horizon_s": horizon,
		})
		batches := make([][]trace.Event, len(recs))
		for i, rec := range recs {
			batches[i] = rec.Events()
		}
		for _, ev := range trace.Merge(batches...) {
			cfg.Tracer.Emit(ev)
		}
		trace.End(cfg.Tracer, "scenario.run", horizon, "scenario", trace.Args{
			"completed": rep.Completed, "browned_out": rep.BrownedOut,
			"harvest_j": rep.EnergyHarvested,
		})
	}

	// Profile fold, in node-ID order like every other reduction.
	if cfg.Profile != nil {
		for i := range leds {
			if leds[i].Empty() {
				continue
			}
			cfg.Profile.Ledger(prof.Scope{
				Experiment: cfg.ProfileScope, Node: nodeLabel(i),
			}).Merge(&leds[i])
		}
	}
	return rep, nil
}

// siteSource scales the shared source by the node's site exposure without
// mutating the shared trace, as a circuit.EventSource: At is bitwise the
// scaling the engine always applied (site == 1 hands out the trace itself,
// whose At the derived Irradiance then aliases), and NextChange delegates
// to the trace — scaling by a positive site maps exact-zero samples to
// exact zero, so the trace's constancy claims hold for the scaled signal.
func siteSource(src *weather.Trace, site float64) circuit.EventSource {
	if site == 1 {
		return src
	}
	return scaledSource{src: src, site: site}
}

// scaledSource is siteSource's non-unit-site case.
type scaledSource struct {
	src  *weather.Trace
	site float64
}

// At returns site * src.At(t), the arithmetic of the pre-EventSource
// per-node closure.
func (s scaledSource) At(t float64) float64 { return s.site * s.src.At(t) }

// NextChange delegates to the underlying trace: a span on which the trace
// is constant is a span on which any fixed multiple of it is constant.
func (s scaledSource) NextChange(t float64) float64 { return s.src.NextChange(t) }

// auxLoad composes the constant peripheral draw with the radio schedule.
func auxLoad(base float64, schedTx *radio.Schedule) func(float64) float64 {
	if schedTx.TotalEnergy() == 0 {
		return func(float64) float64 { return base }
	}
	return func(t float64) float64 { return base + schedTx.Load(t) }
}
