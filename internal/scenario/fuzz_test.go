package scenario

import (
	"testing"
)

// FuzzParseScenario fuzzes the JSON front door with the property every
// accepted spec must satisfy: it validates, its canonical String() reparses
// to the identical spec, and the canonical form is a fixed point.
func FuzzParseScenario(f *testing.F) {
	f.Add(``)
	f.Add(`{}`)
	f.Add(demoSpec)
	f.Add(`{"source":{"kind":"clearsky","peak":0.8}}`)
	f.Add(`{"source":{"kind":"cloudy","dwell_clear_s":3,"dwell_cloudy_s":0.5}}`)
	f.Add(`{"source":{"kind":"indoor","start_stage":1,"jitter":0.1}}`)
	f.Add(`{"source":{"kind":"trace","path":"x.json"}}`)
	f.Add(`{"workload":{"arrivals":{"process":"weibull","shape":0.7,"rate_hz":20}}}`)
	f.Add(`{"workload":{"arrivals":{"process":"none"}}}`)
	f.Add(`{"geometry":{"nodes":16,"horizon_s":4,"step_s":0.001}}`)
	f.Add(`{"version":1,"seed":-1}`)
	f.Add(`{"source":{"kind":"kinetic","jitter":0.999}}`)
	f.Add(`{"geometry":{"horizon_s":1e308}}`)
	f.Add(`[1,2,3]`)
	f.Add("{\"name\":\"\u0000\"}")
	f.Fuzz(func(t *testing.T, data string) {
		spec, err := ParseScenario([]byte(data))
		if err != nil {
			return // rejection is always fine; the property binds acceptances
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails Validate: %v\ninput: %q", err, data)
		}
		canon := spec.String()
		back, err := ParseScenario([]byte(canon))
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ncanon: %q\ninput: %q", err, canon, data)
		}
		if back != spec {
			t.Fatalf("canonical round trip changed the spec\nin:  %+v\nout: %+v", spec, back)
		}
		if back.String() != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", canon, back.String())
		}
	})
}
