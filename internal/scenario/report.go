package scenario

import (
	"fmt"
	"io"

	"repro/internal/plot"
	"repro/internal/weather"
)

// SourceStats summarises the rendered light trace. The text report prints
// these — never the source kind or path — so a recorded environment
// replayed through kind=trace renders byte-identical to the original run:
// the stats are properties of the samples, which the trace file preserves
// exactly.
type SourceStats struct {
	Samples   int     `json:"samples"`
	StepS     float64 `json:"step_s"`
	DurationS float64 `json:"duration_s"`
	Min       float64 `json:"min"`
	Mean      float64 `json:"mean"`
	Max       float64 `json:"max"`
}

// NodeResult is one node's outcome.
type NodeResult struct {
	ID               int     `json:"id"`
	V0               float64 `json:"v0_v"`
	Site             float64 `json:"site"`
	Events           int     `json:"events"`
	RadioEnergyJ     float64 `json:"radio_energy_j"`
	Completed        bool    `json:"completed"`
	CompletionTimeS  float64 `json:"completion_time_s,omitempty"`
	BrownedOut       bool    `json:"browned_out"`
	EnergyHarvestedJ float64 `json:"energy_harvested_j"`
	EnergyAuxJ       float64 `json:"energy_aux_j"`
	FinalVcapV       float64 `json:"final_vcap_v"`
}

// Report summarises a scenario run. Every field is a deterministic
// function of the Spec.
type Report struct {
	Spec            Spec         `json:"spec"`
	Source          SourceStats  `json:"source"`
	Nodes           []NodeResult `json:"nodes"`
	Completed       int          `json:"completed"`
	BrownedOut      int          `json:"browned_out"`
	Events          int          `json:"events"`
	EnergyHarvested float64      `json:"energy_harvested_j"`
	EnergyDelivered float64      `json:"energy_delivered_j"`
	EnergyAux       float64      `json:"energy_aux_j"`
	MeanFinalVcap   float64      `json:"mean_final_vcap_v"`

	// src is the rendered light trace, kept for Series()/recording; not
	// part of the serialised report.
	src *weather.Trace
}

// SourceSamples returns the rendered light trace backing this run, for
// recording with WriteTrace. Nil on a hand-built Report.
func (r *Report) SourceSamples() *weather.Trace { return r.src }

// Report renders the human-readable scenario report. The bytes are part of
// the determinism contract: parity tests, goldens and the record/replay
// regression all compare them verbatim. Deliberately absent: the source
// kind and path (see SourceStats) and anything wall-clock.
func (r *Report) Report(w io.Writer) error {
	n := len(r.Nodes)
	name := r.Spec.Name
	if name == "" {
		name = "(unnamed)"
	}
	g := r.Spec.Geometry
	wl := r.Spec.Workload
	fmt.Fprintf(w, "== SCENARIO: %s ==\n", name)
	fmt.Fprintf(w, "  seed %d, %d node(s), horizon %g s, step %g s\n", r.Spec.Seed, g.Nodes, g.HorizonS, g.StepS)
	fmt.Fprintf(w, "  source: %d samples @ %g s, light min/mean/max = %.4f/%.4f/%.4f\n",
		r.Source.Samples, r.Source.StepS, r.Source.Min, r.Source.Mean, r.Source.Max)
	fmt.Fprintf(w, "  workload: %.3g-cycle job, deadline %.4f s, sprint %.2f, aux %.2f mW\n",
		wl.JobCycles, wl.DeadlineFrac*g.HorizonS, wl.Sprint, wl.AuxW*1e3)
	if wl.Arrivals.Process == ArrivalsNone {
		fmt.Fprintf(w, "  arrivals: none\n")
	} else {
		shape := ""
		if wl.Arrivals.Shape != 0 {
			shape = fmt.Sprintf(" shape %g,", wl.Arrivals.Shape)
		}
		fmt.Fprintf(w, "  arrivals: %s,%s mean %g events/s, %d-byte payloads (%d events fleet-wide)\n",
			wl.Arrivals.Process, shape, wl.Arrivals.RateHz, wl.Arrivals.PayloadBytes, r.Events)
	}
	fmt.Fprintln(w, "  node    v0 V  site  events  tx mJ   outcome                harvest mJ  final V")
	for _, nd := range r.Nodes {
		outcome := "unfinished"
		if nd.Completed {
			outcome = fmt.Sprintf("done @ %.4f s", nd.CompletionTimeS)
		}
		if nd.BrownedOut {
			outcome += ", browned"
		}
		fmt.Fprintf(w, "  %04d   %.3f  %.2f  %6d  %6.3f  %-22s  %9.3f   %.3f\n",
			nd.ID, nd.V0, nd.Site, nd.Events, nd.RadioEnergyJ*1e3, outcome,
			nd.EnergyHarvestedJ*1e3, nd.FinalVcapV)
	}
	pct := func(k int) float64 {
		if n == 0 {
			return 0
		}
		return 100 * float64(k) / float64(n)
	}
	fmt.Fprintf(w, "  completed %d/%d (%.1f%%), browned out %d (%.1f%%)\n",
		r.Completed, n, pct(r.Completed), r.BrownedOut, pct(r.BrownedOut))
	fmt.Fprintf(w, "  energy: harvested %.3f mJ, delivered %.3f mJ, aux %.3f mJ; mean final vcap %.3f V\n",
		r.EnergyHarvested*1e3, r.EnergyDelivered*1e3, r.EnergyAux*1e3, r.MeanFinalVcap)
	return nil
}

// maxSeriesPoints caps the exported light series; longer traces export a
// deterministic stride-decimated curve.
const maxSeriesPoints = 2048

// Series returns the plottable data of the run: the rendered light trace
// (decimated to at most maxSeriesPoints) and the per-node final voltages.
func (r *Report) Series() []plot.Series {
	var out []plot.Series
	if r.src != nil && len(r.src.Samples) > 0 {
		stride := (len(r.src.Samples) + maxSeriesPoints - 1) / maxSeriesPoints
		light := plot.Series{Name: "light"}
		for i := 0; i < len(r.src.Samples); i += stride {
			light.X = append(light.X, float64(i)*r.src.Step)
			light.Y = append(light.Y, r.src.Samples[i])
		}
		out = append(out, light)
	}
	vcap := plot.Series{Name: "final_vcap_v"}
	for _, nd := range r.Nodes {
		vcap.X = append(vcap.X, float64(nd.ID))
		vcap.Y = append(vcap.Y, nd.FinalVcapV)
	}
	return append(out, vcap)
}
