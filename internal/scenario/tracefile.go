package scenario

// The replayable on-disk light-trace format. A recorded environment is a
// versioned JSON envelope around the sampled irradiance series; float64
// samples survive the JSON round trip exactly (encoding/json emits the
// shortest representation that parses back to the same bits), so a
// replayed trace drives the simulator through the identical sample
// sequence and the re-run's report is byte-identical to the original's —
// the regression-pinning property the format exists for.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/weather"
)

// Errors returned by the trace codec.
var (
	// ErrBadTraceFile indicates a trace file that fails decode validation.
	ErrBadTraceFile = errors.New("scenario: invalid trace file")
)

// Trace file schema constants.
const (
	// TraceFormat is the format tag every trace file carries.
	TraceFormat = "hem-light-trace"
	// TraceVersion is the schema version this build reads and writes.
	TraceVersion = 1
	// MaxTraceSamples bounds what a decode will accept; at the default
	// scenario resolution this is over three simulated hours.
	MaxTraceSamples = 1 << 28
)

// traceFile is the on-disk envelope.
type traceFile struct {
	Format  string    `json:"format"`
	Version int       `json:"version"`
	StepS   float64   `json:"step_s"`
	Samples []float64 `json:"samples"`
}

// WriteTrace encodes tr into the versioned trace format.
func WriteTrace(w io.Writer, tr *weather.Trace) error {
	if tr == nil || len(tr.Samples) == 0 {
		return fmt.Errorf("%w: nothing to write (empty trace)", ErrBadTraceFile)
	}
	if !posFinite(tr.Step) {
		return fmt.Errorf("%w: step %g must be positive and finite", ErrBadTraceFile, tr.Step)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{
		Format:  TraceFormat,
		Version: TraceVersion,
		StepS:   tr.Step,
		Samples: tr.Samples,
	})
}

// ReadTrace decodes a recorded trace, validating the envelope before any
// sample reaches the simulator: the format tag and version must match, the
// step must be positive and finite (a zero or NaN step would turn
// weather.Trace.At into a constant — or, before the At guard, NaN
// positions), and every sample must be a finite, non-negative light level.
func ReadTrace(r io.Reader) (*weather.Trace, error) {
	var tf traceFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTraceFile, err)
	}
	if tf.Format != TraceFormat {
		return nil, fmt.Errorf("%w: format %q (want %q)", ErrBadTraceFile, tf.Format, TraceFormat)
	}
	if tf.Version != TraceVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrBadTraceFile, tf.Version, TraceVersion)
	}
	if !posFinite(tf.StepS) {
		return nil, fmt.Errorf("%w: step %g must be positive and finite", ErrBadTraceFile, tf.StepS)
	}
	if len(tf.Samples) == 0 || len(tf.Samples) > MaxTraceSamples {
		return nil, fmt.Errorf("%w: %d samples outside [1, %d]", ErrBadTraceFile, len(tf.Samples), MaxTraceSamples)
	}
	for i, v := range tf.Samples {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("%w: sample %d = %g is not a finite non-negative light level", ErrBadTraceFile, i, v)
		}
	}
	return &weather.Trace{Step: tf.StepS, Samples: tf.Samples}, nil
}

// WriteTraceFile records tr at path.
func WriteTraceFile(path string, tr *weather.Trace) error {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadTraceFile loads a recorded trace from path.
func ReadTraceFile(path string) (*weather.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}
