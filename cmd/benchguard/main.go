// Command benchguard is the benchmark regression gate for the serving hot
// paths. It measures four paths in-process — PV solve cached and uncached,
// one registry report render, and the cached experiment HTTP handler —
// writes the measured ns/op to a JSON file, and exits non-zero if any path
// regressed more than the tolerance versus the committed baseline. CI runs
// it after the unit tests; refresh the baseline deliberately with -update
// after an intentional performance change.
//
// Usage:
//
//	benchguard [-baseline BENCH_serve.json] [-out measured.json]
//	           [-tolerance 0.25] [-benchtime 200ms] [-update]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"repro/internal/expt"
	"repro/internal/pv"
	"repro/internal/serve"
)

// baselineFile is the on-disk schema of BENCH_serve.json.
type baselineFile struct {
	Note       string             `json:"note"`
	Benchmarks map[string]float64 `json:"benchmarks"` // name -> ns/op
}

// hotPath runs n iterations of one guarded operation.
type hotPath func(n int) error

// hotPaths returns the guarded paths keyed by name. Shared state (the
// server, the uncached-irradiance counter) lives in the closures so warm-up
// and measurement see the same world.
func hotPaths() map[string]hotPath {
	cell := pv.NewCell()
	h := serve.New(serve.Config{}).Handler()
	uncachedIrr := 0.5

	return map[string]hotPath{
		"pv_solve_cached": func(n int) error {
			for i := 0; i < n; i++ {
				cell.MPP(pv.FullSun)
			}
			return nil
		},
		"pv_solve_uncached": func(n int) error {
			for i := 0; i < n; i++ {
				// A fresh key every iteration forces the full solve.
				uncachedIrr += 1e-9
				cell.MPP(uncachedIrr)
			}
			return nil
		},
		"report_render": func(n int) error {
			for i := 0; i < n; i++ {
				if _, err := expt.Render("fig3"); err != nil {
					return err
				}
			}
			return nil
		},
		"http_experiment_cached": func(n int) error {
			for i := 0; i < n; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/experiments/fig3", nil))
				if rec.Code != http.StatusOK {
					return fmt.Errorf("handler status %d: %s", rec.Code, rec.Body)
				}
			}
			return nil
		},
	}
}

// measure times p until the budget is spent and returns ns/op. One
// untimed warm-up iteration absorbs cold caches and lazy allocations.
func measure(p hotPath, budget time.Duration) (float64, error) {
	if err := p(1); err != nil {
		return 0, err
	}
	n := 1
	for {
		start := time.Now()
		if err := p(n); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		if elapsed >= budget || n >= 1e8 {
			return float64(elapsed.Nanoseconds()) / float64(n), nil
		}
		// Grow toward the budget with 20% overshoot, at least doubling.
		next := int(float64(n) * 1.2 * float64(budget) / float64(elapsed+1))
		if next < 2*n {
			next = 2 * n
		}
		n = next
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "BENCH_serve.json", "committed baseline to compare against")
		outPath      = fs.String("out", "", "also write measured ns/op to this file")
		tolerance    = fs.Float64("tolerance", 0.25, "allowed fractional regression per path")
		benchtime    = fs.Duration("benchtime", 200*time.Millisecond, "measurement budget per path")
		update       = fs.Bool("update", false, "rewrite the baseline instead of comparing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	paths := hotPaths()
	names := make([]string, 0, len(paths))
	for n := range paths {
		names = append(names, n)
	}
	sort.Strings(names)

	measured := baselineFile{
		Note:       "ns/op baselines for the hemserved hot paths; refresh deliberately with: go run ./cmd/benchguard -update",
		Benchmarks: make(map[string]float64, len(names)),
	}
	for _, name := range names {
		nsop, err := measure(paths[name], *benchtime)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		measured.Benchmarks[name] = nsop
		fmt.Printf("%-24s %14.1f ns/op\n", name, nsop)
	}

	writeTo := *outPath
	if *update {
		writeTo = *baselinePath
	}
	if writeTo != "" {
		blob, err := json.MarshalIndent(measured, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(writeTo, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *update {
		fmt.Printf("baseline %s rewritten\n", *baselinePath)
		return nil
	}

	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline missing (create with -update): %w", err)
	}
	var base baselineFile
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", *baselinePath, err)
	}
	var regressions []string
	for _, name := range names {
		want, ok := base.Benchmarks[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: not in baseline (refresh with -update)", name))
			continue
		}
		got := measured.Benchmarks[name]
		switch {
		case got > want*(1+*tolerance):
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f (+%.0f%%, limit +%.0f%%)",
				name, got, want, 100*(got/want-1), 100**tolerance))
		case got < want*(1-*tolerance):
			fmt.Printf("note: %s improved %.0f%% — consider refreshing the baseline\n", name, 100*(1-got/want))
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d hot path(s) regressed beyond +%.0f%%", len(regressions), 100**tolerance)
	}
	fmt.Printf("all %d hot paths within +%.0f%% of baseline\n", len(names), 100**tolerance)
	return nil
}
