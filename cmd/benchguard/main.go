// Command benchguard is the benchmark regression gate for the hot paths.
// Two suites are guarded, each with its own committed baseline:
//
//   - serve (BENCH_serve.json): PV solve cached and uncached, one registry
//     report render, and the cached experiment HTTP handler.
//   - sim (BENCH_sim.json): the simulation kernel — the warm-started PV
//     solve versus the stateless bisection reference, the batched sweep
//     solver at width 1 and 10k, a 2000-step circuit run with energy
//     profiling off and on, a 16-lane circuit.RunBatch, and one full
//     registry experiment end to end.
//
// It measures each path in-process, writes the measured ns/op to a JSON
// file, and exits non-zero if any path regressed more than the tolerance
// versus the committed baseline (-report-only prints regressions without
// failing, for noisy CI runners). CI runs it after the unit tests; refresh
// a baseline deliberately with -update after an intentional performance
// change.
//
// Usage:
//
//	benchguard [-suite serve|sim] [-baseline FILE] [-out measured.json]
//	           [-tolerance 0.25] [-benchtime 200ms] [-update] [-report-only]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"repro/internal/cap"
	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/expt"
	"repro/internal/fleet"
	"repro/internal/prof"
	"repro/internal/pv"
	"repro/internal/reg"
	"repro/internal/serve"
)

// baselineFile is the on-disk schema of BENCH_serve.json.
type baselineFile struct {
	Note       string             `json:"note"`
	Benchmarks map[string]float64 `json:"benchmarks"` // name -> ns/op
}

// hotPath runs n iterations of one guarded operation.
type hotPath func(n int) error

// hotPaths returns the guarded paths keyed by name. Shared state (the
// server, the uncached-irradiance counter) lives in the closures so warm-up
// and measurement see the same world.
func hotPaths() map[string]hotPath {
	cell := pv.NewCell()
	h := serve.New(serve.Config{}).Handler()
	uncachedIrr := 0.5

	return map[string]hotPath{
		"pv_solve_cached": func(n int) error {
			for i := 0; i < n; i++ {
				cell.MPP(pv.FullSun)
			}
			return nil
		},
		"pv_solve_uncached": func(n int) error {
			for i := 0; i < n; i++ {
				// A fresh key every iteration forces the full solve.
				uncachedIrr += 1e-9
				cell.MPP(uncachedIrr)
			}
			return nil
		},
		"report_render": func(n int) error {
			for i := 0; i < n; i++ {
				if _, err := expt.Render("fig3"); err != nil {
					return err
				}
			}
			return nil
		},
		"http_experiment_cached": func(n int) error {
			for i := 0; i < n; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/experiments/fig3", nil))
				if rec.Code != http.StatusOK {
					return fmt.Errorf("handler status %d: %s", rec.Code, rec.Body)
				}
			}
			return nil
		},
	}
}

// benchSink keeps measured loops from being optimised away.
var benchSink float64

// simPaths returns the simulation-kernel paths guarded by BENCH_sim.json.
// The warm path keeps one pv.SolverState alive across iterations, mirroring
// how circuit.State threads it through a run; the voltage ramps in µV steps
// so consecutive solves stay close, like vcap between timesteps.
func simPaths() map[string]hotPath {
	cell := pv.NewCell()
	var state pv.SolverState
	warmIdx, refIdx := 0, 0
	rampVoltage := func(i int) float64 { return 0.95 + 1e-6*float64(i%1000) }

	// The batched sweep: the BenchmarkKernelBatch grid (10k points at 1 µV
	// spacing around the knee) solved through SolveBatch in chunks. Width 1
	// is a cold scalar solve per point; width 10k chains the walking solver
	// state across the whole sweep — the batch speedup under guard.
	const sweepPoints = 10000
	sweepVs := make([]float64, sweepPoints)
	for i := range sweepVs {
		sweepVs[i] = 0.995 + 0.01*float64(i)/sweepPoints
	}
	sweepIrr := []float64{0.8}
	sweepOut := make([]float64, sweepPoints)
	sweep := func(width int) {
		for lo := 0; lo < sweepPoints; lo += width {
			hi := lo + width
			if hi > sweepPoints {
				hi = sweepPoints
			}
			cell.SolveBatch(sweepVs[lo:hi], sweepIrr, sweepOut[lo:hi], nil)
		}
		benchSink = sweepOut[sweepPoints-1]
	}

	batchRun := func() error {
		cfgs := make([]circuit.Config, 16)
		for i := range cfgs {
			storage, err := cap.New(100e-6, 0.8+0.05*float64(i%8), 2.0)
			if err != nil {
				return err
			}
			cfgs[i] = circuit.Config{
				Cell:        cell,
				Proc:        cpu.NewProcessor(),
				Reg:         reg.NewSC(),
				Cap:         storage,
				Irradiance:  circuit.ConstantIrradiance(0.2 + 0.1*float64(i%5)),
				Controller:  &circuit.FixedPoint{Supply: 0.5},
				ClockLevels: []float64{10e6, 20e6, 40e6, 80e6},
				Step:        5e-6,
				MaxTime:     500 * 5e-6,
			}
		}
		_, err := circuit.RunBatch(cfgs)
		return err
	}

	// led == nil is the production default (profiling off); the paired
	// profile_on/profile_off entries guard the observer's overhead and,
	// more importantly, that the off path stays free.
	circuitRun := func(led *prof.Ledger) error {
		storage, err := cap.New(100e-6, 1.0, 2.0)
		if err != nil {
			return err
		}
		sim, err := circuit.New(circuit.Config{
			Cell:        cell,
			Proc:        cpu.NewProcessor(),
			Reg:         reg.NewSC(),
			Cap:         storage,
			Irradiance:  circuit.ConstantIrradiance(1.0),
			Controller:  &circuit.FixedPoint{Supply: 0.5},
			ClockLevels: []float64{10e6, 20e6, 40e6, 80e6},
			Step:        5e-6,
			MaxTime:     2000 * 5e-6,
			Ledger:      led,
		})
		if err != nil {
			return err
		}
		_, err = sim.Run()
		return err
	}

	return map[string]hotPath{
		"cell_current_warm": func(n int) error {
			for i := 0; i < n; i++ {
				benchSink = cell.CurrentWarm(rampVoltage(warmIdx), 0.8, &state)
				warmIdx++
			}
			return nil
		},
		"cell_current_reference": func(n int) error {
			for i := 0; i < n; i++ {
				benchSink = cell.CurrentReference(rampVoltage(refIdx), 0.8)
				refIdx++
			}
			return nil
		},
		"circuit_run_2000step": func(n int) error {
			for i := 0; i < n; i++ {
				if err := circuitRun(nil); err != nil {
					return err
				}
			}
			return nil
		},
		// The same 2000-step run with the energy ledger detached/attached:
		// off must track circuit_run_2000step (the nil check is the whole
		// cost), on bounds the per-step accounting overhead.
		"profile_off_step": func(n int) error {
			for i := 0; i < n; i++ {
				if err := circuitRun(nil); err != nil {
					return err
				}
			}
			return nil
		},
		"profile_on_step": func(n int) error {
			var led prof.Ledger
			for i := 0; i < n; i++ {
				if err := circuitRun(&led); err != nil {
					return err
				}
			}
			benchSink = led.TotalJoules()
			return nil
		},
		"sim_full_run": func(n int) error {
			for i := 0; i < n; i++ {
				if _, err := expt.Render("fig11b"); err != nil {
					return err
				}
			}
			return nil
		},
		"batch_solve_sweep_w1": func(n int) error {
			for i := 0; i < n; i++ {
				sweep(1)
			}
			return nil
		},
		"batch_solve_sweep_w10k": func(n int) error {
			for i := 0; i < n; i++ {
				sweep(sweepPoints)
			}
			return nil
		},
		// 16 lanes x 500 steps on one contiguous slab, the shape a fleet
		// worker advances per epoch.
		"batch_run_16lane": func(n int) error {
			for i := 0; i < n; i++ {
				if err := batchRun(); err != nil {
					return err
				}
			}
			return nil
		},
		// The fleet engine end to end: 50 nodes, 500 steps each. The
		// companion BenchmarkFleetRun (repo root) reports nodes/sec at
		// N=100/1k/10k; this entry is the regression gate.
		"fleet_run_50node": func(n int) error {
			for i := 0; i < n; i++ {
				if _, err := fleet.Run(fleet.Config{
					Nodes: 50, Seed: 1, Horizon: 0.01, Epoch: 2e-3, Step: 2e-5,
				}); err != nil {
					return err
				}
			}
			return nil
		},
		// Event-horizon fast-forward on a mostly-dark fleet, scaled down
		// from BenchmarkFleetDark (repo root, 10k nodes): the same
		// geometry at 50 nodes. The pair pins the skip path's speedup in
		// the baseline — fleet_dark_noffwd / fleet_dark_ffwd is the
		// recorded ratio, and fleet_dark_ffwd alone guards the skip
		// machinery against regressions.
		"fleet_dark_ffwd": func(n int) error {
			for i := 0; i < n; i++ {
				if _, err := fleet.Run(fleet.Config{
					Nodes: 50, Seed: 1, Horizon: 10.0, Epoch: 0.1, Step: 2e-4, Dark: 0.99,
				}); err != nil {
					return err
				}
			}
			return nil
		},
		"fleet_dark_noffwd": func(n int) error {
			for i := 0; i < n; i++ {
				if _, err := fleet.Run(fleet.Config{
					Nodes: 50, Seed: 1, Horizon: 10.0, Epoch: 0.1, Step: 2e-4, Dark: 0.99,
					NoFastForward: true,
				}); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// measure times p until the budget is spent and returns ns/op. One
// untimed warm-up iteration absorbs cold caches and lazy allocations.
func measure(p hotPath, budget time.Duration) (float64, error) {
	if err := p(1); err != nil {
		return 0, err
	}
	n := 1
	for {
		start := time.Now()
		if err := p(n); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		if elapsed >= budget || n >= 1e8 {
			return float64(elapsed.Nanoseconds()) / float64(n), nil
		}
		// Grow toward the budget with 20% overshoot, at least doubling.
		next := int(float64(n) * 1.2 * float64(budget) / float64(elapsed+1))
		if next < 2*n {
			next = 2 * n
		}
		n = next
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	var (
		suite        = fs.String("suite", "serve", "path suite to guard: serve or sim")
		baselinePath = fs.String("baseline", "", "committed baseline to compare against (default BENCH_<suite>.json)")
		outPath      = fs.String("out", "", "also write measured ns/op to this file")
		tolerance    = fs.Float64("tolerance", 0.25, "allowed fractional regression per path")
		benchtime    = fs.Duration("benchtime", 200*time.Millisecond, "measurement budget per path")
		update       = fs.Bool("update", false, "rewrite the baseline instead of comparing")
		reportOnly   = fs.Bool("report-only", false, "print regressions but exit zero (for noisy runners)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var paths map[string]hotPath
	switch *suite {
	case "serve":
		paths = hotPaths()
	case "sim":
		paths = simPaths()
	default:
		return fmt.Errorf("unknown suite %q (want serve or sim)", *suite)
	}
	if *baselinePath == "" {
		*baselinePath = "BENCH_" + *suite + ".json"
	}
	names := make([]string, 0, len(paths))
	for n := range paths {
		names = append(names, n)
	}
	sort.Strings(names)

	measured := baselineFile{
		Note: fmt.Sprintf("ns/op baselines for the %s hot paths; refresh deliberately with: go run ./cmd/benchguard -suite %s -update",
			*suite, *suite),
		Benchmarks: make(map[string]float64, len(names)),
	}
	for _, name := range names {
		nsop, err := measure(paths[name], *benchtime)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		measured.Benchmarks[name] = nsop
		fmt.Printf("%-24s %14.1f ns/op\n", name, nsop)
	}

	writeTo := *outPath
	if *update {
		writeTo = *baselinePath
	}
	if writeTo != "" {
		blob, err := json.MarshalIndent(measured, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(writeTo, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *update {
		fmt.Printf("baseline %s rewritten\n", *baselinePath)
		return nil
	}

	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline missing (create with -update): %w", err)
	}
	var base baselineFile
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", *baselinePath, err)
	}
	var regressions []string
	for _, name := range names {
		want, ok := base.Benchmarks[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: not in baseline (refresh with -update)", name))
			continue
		}
		got := measured.Benchmarks[name]
		switch {
		case got > want*(1+*tolerance):
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f (+%.0f%%, limit +%.0f%%)",
				name, got, want, 100*(got/want-1), 100**tolerance))
		case got < want*(1-*tolerance):
			fmt.Printf("note: %s improved %.0f%% — consider refreshing the baseline\n", name, 100*(1-got/want))
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
		}
		if *reportOnly {
			fmt.Printf("%d hot path(s) regressed beyond +%.0f%% (report-only: not failing)\n",
				len(regressions), 100**tolerance)
			return nil
		}
		return fmt.Errorf("%d hot path(s) regressed beyond +%.0f%%", len(regressions), 100**tolerance)
	}
	fmt.Printf("all %d hot paths within +%.0f%% of baseline\n", len(names), 100**tolerance)
	return nil
}
