package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// lineWaiter is an io.Writer that lets a test wait for the first line
// written through it (the "listening on" banner).
type lineWaiter struct {
	mu    sync.Mutex
	buf   strings.Builder
	first chan string
	sent  bool
}

func newLineWaiter() *lineWaiter {
	return &lineWaiter{first: make(chan string, 1)}
}

func (w *lineWaiter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		if s := w.buf.String(); strings.Contains(s, "\n") {
			w.first <- strings.SplitN(s, "\n", 2)[0]
			w.sent = true
		}
	}
	return len(p), nil
}

func (w *lineWaiter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeAndGracefulShutdown boots the daemon on an ephemeral port,
// exercises a round trip, then cancels the run context (the signal path)
// and requires a clean drain.
func TestServeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := newLineWaiter()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet", "-drain", "5s"}, stdout, io.Discard)
	}()

	var banner string
	select {
	case banner = <-stdout.first:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("no listening banner within 10s")
	}
	base := strings.TrimSpace(strings.TrimPrefix(banner, "hemserved: listening on "))
	if !strings.HasPrefix(base, "http://") {
		t.Fatalf("unexpected banner %q", banner)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete within 10s")
	}
	if out := stdout.String(); !strings.Contains(out, "shutdown complete") {
		t.Errorf("missing shutdown banner in output:\n%s", out)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bogus flag accepted")
	}
}

func TestListenFailure(t *testing.T) {
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:http"}, io.Discard, io.Discard); err == nil {
		t.Fatal("invalid address accepted")
	}
}
