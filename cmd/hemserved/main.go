// Command hemserved serves the experiment registry and the energy-management
// planners over HTTP (see internal/serve for the API). It is the deployment
// shape of the reproduction: a fleet of battery-less nodes (or a dashboard)
// queries MPP/DVFS plans and experiment reports from one warmed-up process
// instead of re-solving the models locally.
//
// Endpoints:
//
//	GET  /api/v1/experiments            registry listing
//	GET  /api/v1/experiments/{id}       report (add ?format=csv for series)
//	GET  /api/v1/experiments/{id}/trace simulation events (?format=chrome)
//	POST /api/v1/experiments/batch      {"ids": ["fig2", ...]} or ["all"]
//	GET  /api/v1/fleet/{spec}           shared-clock fleet report (n=100,seed=1,...)
//	POST /api/v1/pv/solve               {"irradiance": 0.5, "points": 32}
//	POST /api/v1/mppt/plan              {"pin_w": ...} or a crossing window
//	GET  /metrics                       counters, latencies, cache hit rates
//	GET  /metrics/prometheus            the same counters, Prometheus text format
//	GET  /healthz                       liveness
//
// With -debug-addr a second listener serves net/http/pprof under /debug/
// pprof/, kept off the public mux so profiling never rides the API port.
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
// requests (bounded by -drain).
//
// With -chaos the server honors X-Fault-Plan headers carrying a fault
// plan (internal/fault): injected latency, failures, render faults and
// gate holds, for resilience drills against a non-production instance.
//
// Usage:
//
//	hemserved [-addr 127.0.0.1:8080] [-workers N] [-cache 64]
//	          [-timeout 30s] [-drain 10s] [-quiet] [-debug-addr 127.0.0.1:0]
//	          [-chaos]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hemserved: %v\n", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until ctx is cancelled (signal) or the
// listener fails. The "listening on" line goes to stdout so scripts (and
// the CI smoke job) can discover a :0 port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hemserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		workers = fs.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cache   = fs.Int("cache", 64, "report LRU capacity (rendered responses)")
		timeout = fs.Duration("timeout", 30*time.Second, "per-request deadline including queueing")
		drain   = fs.Duration("drain", 10*time.Second, "shutdown drain budget for in-flight requests")
		quiet   = fs.Bool("quiet", false, "disable the JSON access log on stderr")
		debug   = fs.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
		chaos   = fs.Bool("chaos", false, "honor X-Fault-Plan fault-injection headers (drills only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := serve.Config{
		Workers:         *workers,
		ReportCacheSize: *cache,
		RequestTimeout:  *timeout,
		Chaos:           *chaos,
	}
	if !*quiet {
		cfg.AccessLog = stderr
	}
	if *chaos {
		fmt.Fprintln(stdout, "hemserved: chaos mode on, honoring "+serve.FaultPlanHeader+" headers")
	}
	// The server-side timeouts guard the listener against slow-loris
	// clients and stuck writes; they sit above the per-request deadline
	// (-timeout), which also covers gate queueing, so the write timeout
	// must not undercut it.
	srv := &http.Server{
		Handler:           serve.New(cfg).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      *timeout + 15*time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "hemserved: listening on http://%s\n", ln.Addr())

	if *debug != "" {
		debugSrv, debugLn, err := debugServer(*debug)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer debugSrv.Close()
		fmt.Fprintf(stdout, "hemserved: pprof on http://%s/debug/pprof/\n", debugLn.Addr())
		go debugSrv.Serve(debugLn)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(stdout, "hemserved: shutting down, draining in-flight requests (budget %s)\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "hemserved: shutdown complete")
	return nil
}

// debugServer builds the opt-in pprof listener. The handlers are wired
// explicitly instead of importing net/http/pprof for its DefaultServeMux
// side effect, so nothing ever leaks onto the API mux.
func debugServer(addr string) (*http.Server, net.Listener, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	// Mirror the API listener's guards; pprof profile captures stream for
	// up to their ?seconds= budget, so the write timeout stays generous.
	return &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       120 * time.Second,
	}, ln, nil
}
