package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/expt"
	"repro/internal/prof"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// record once, share the file across subcommand tests (fig11b runs two
// transient simulations; no need to repeat them per test).
func recordFig11b(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig11b.jsonl")
	if err := run([]string{"record", "-o", path, "fig11b"}, new(bytes.Buffer)); err != nil {
		t.Fatalf("record: %v", err)
	}
	return path
}

func TestListShowsTracedExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"list"}, &out); err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, id := range []string{"fig8", "fig9b", "fig11b", "ext-intermittent"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %q:\n%s", id, out.String())
		}
	}
}

func TestRecordValidateSummarize(t *testing.T) {
	path := recordFig11b(t)

	var out bytes.Buffer
	if err := run([]string{"validate", path}, &out); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !strings.HasPrefix(out.String(), "ok:") {
		t.Errorf("validate output = %q, want ok: prefix", out.String())
	}

	out.Reset()
	if err := run([]string{"summarize", path}, &out); err != nil {
		t.Fatalf("summarize: %v", err)
	}
	for _, want := range []string{"by kind:", "spans:", "time in mode:", "sched.bypass", "sprint"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}

// TestGoldenFleetSummary pins the summarize report for the ext-fleet trace,
// covering the fleet.run span and the fleet.epoch counter table.
// Regenerate with: go test ./cmd/hemtrace -run TestGoldenFleetSummary -update
func TestGoldenFleetSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ext-fleet.jsonl")
	if err := run([]string{"record", "-o", path, "ext-fleet"}, new(bytes.Buffer)); err != nil {
		t.Fatalf("record: %v", err)
	}
	var out bytes.Buffer
	if err := run([]string{"summarize", path}, &out); err != nil {
		t.Fatalf("summarize: %v", err)
	}
	golden := filepath.Join("testdata", "golden_summary_ext-fleet.txt")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (refresh with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("summary drifted from golden:\n--- got ---\n%s--- want ---\n%s", out.Bytes(), want)
	}
	for _, kind := range []string{"fleet.run", "fleet.epoch", "counters:"} {
		if !strings.Contains(out.String(), kind) {
			t.Errorf("fleet summary missing %q:\n%s", kind, out.String())
		}
	}
}

// TestProfFromTrace: the prof subcommand turns a recorded trace into a
// decodable pprof profile whose scopes come from the trace's tracks.
func TestProfFromTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig8.jsonl")
	if err := run([]string{"record", "-o", path, "fig8"}, new(bytes.Buffer)); err != nil {
		t.Fatalf("record: %v", err)
	}
	var out bytes.Buffer
	if err := run([]string{"prof", path}, &out); err != nil {
		t.Fatalf("prof: %v", err)
	}
	d, err := prof.ReadPprof(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("prof output does not decode: %v", err)
	}
	if len(d.Samples) == 0 {
		t.Fatal("prof output has no samples")
	}
	if d.SampleTypes[0].Type != "sim_seconds" || d.SampleTypes[1].Type != "energy_joules" {
		t.Fatalf("sample types = %+v", d.SampleTypes)
	}
	seen := map[string]bool{}
	for _, smp := range d.Samples {
		seen[smp.Labels["experiment"]] = true
	}
	if !seen["fig8"] {
		t.Errorf("profile experiments = %v, want fig8", seen)
	}

	// -o writes the same bytes to a file.
	outPath := filepath.Join(t.TempDir(), "p.pb.gz")
	if err := run([]string{"prof", "-o", outPath, path}, new(bytes.Buffer)); err != nil {
		t.Fatalf("prof -o: %v", err)
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, out.Bytes()) {
		t.Error("prof -o bytes differ from stdout bytes")
	}
}

func TestFilterByKind(t *testing.T) {
	path := recordFig11b(t)
	var out bytes.Buffer
	if err := run([]string{"filter", "-kind", "sched.mode", path}, &out); err != nil {
		t.Fatalf("filter: %v", err)
	}
	events, err := trace.ReadJSONL(&out)
	if err != nil {
		t.Fatalf("re-read filtered: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("filter kept no events")
	}
	for _, ev := range events {
		if ev.Kind != "sched.mode" {
			t.Errorf("filter leaked kind %q", ev.Kind)
		}
	}
}

func TestConvertEmitsValidChromeTrace(t *testing.T) {
	path := recordFig11b(t)
	var out bytes.Buffer
	if err := run([]string{"convert", "-format", "chrome", path}, &out); err != nil {
		t.Fatalf("convert: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("convert output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("convert produced no traceEvents")
	}
}

func TestRecordErrors(t *testing.T) {
	if err := run([]string{"record", "nope"}, new(bytes.Buffer)); !errors.Is(err, expt.ErrUnknown) {
		t.Errorf("unknown ID error = %v, want ErrUnknown", err)
	}
	// fig2 is analytic: registered, but with no traced runner.
	if err := run([]string{"record", "fig2"}, new(bytes.Buffer)); !errors.Is(err, expt.ErrNoTrace) {
		t.Errorf("untraced ID error = %v, want ErrNoTrace", err)
	}
	if err := run([]string{"record", "-format", "xml", "fig11b"}, new(bytes.Buffer)); err == nil {
		t.Error("bad -format accepted")
	}
}

func TestValidateRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte(`{"seq":0,"clock":"lunar","t":1,"kind":"x","ph":"i"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"validate", path}, new(bytes.Buffer)); err == nil {
		t.Error("corrupt trace validated")
	}
}
