package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/expt"
	"repro/internal/trace"
)

// record once, share the file across subcommand tests (fig11b runs two
// transient simulations; no need to repeat them per test).
func recordFig11b(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig11b.jsonl")
	if err := run([]string{"record", "-o", path, "fig11b"}, new(bytes.Buffer)); err != nil {
		t.Fatalf("record: %v", err)
	}
	return path
}

func TestListShowsTracedExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"list"}, &out); err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, id := range []string{"fig8", "fig9b", "fig11b", "ext-intermittent"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %q:\n%s", id, out.String())
		}
	}
}

func TestRecordValidateSummarize(t *testing.T) {
	path := recordFig11b(t)

	var out bytes.Buffer
	if err := run([]string{"validate", path}, &out); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !strings.HasPrefix(out.String(), "ok:") {
		t.Errorf("validate output = %q, want ok: prefix", out.String())
	}

	out.Reset()
	if err := run([]string{"summarize", path}, &out); err != nil {
		t.Fatalf("summarize: %v", err)
	}
	for _, want := range []string{"by kind:", "spans:", "time in mode:", "sched.bypass", "sprint"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestFilterByKind(t *testing.T) {
	path := recordFig11b(t)
	var out bytes.Buffer
	if err := run([]string{"filter", "-kind", "sched.mode", path}, &out); err != nil {
		t.Fatalf("filter: %v", err)
	}
	events, err := trace.ReadJSONL(&out)
	if err != nil {
		t.Fatalf("re-read filtered: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("filter kept no events")
	}
	for _, ev := range events {
		if ev.Kind != "sched.mode" {
			t.Errorf("filter leaked kind %q", ev.Kind)
		}
	}
}

func TestConvertEmitsValidChromeTrace(t *testing.T) {
	path := recordFig11b(t)
	var out bytes.Buffer
	if err := run([]string{"convert", "-format", "chrome", path}, &out); err != nil {
		t.Fatalf("convert: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("convert output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("convert produced no traceEvents")
	}
}

func TestRecordErrors(t *testing.T) {
	if err := run([]string{"record", "nope"}, new(bytes.Buffer)); !errors.Is(err, expt.ErrUnknown) {
		t.Errorf("unknown ID error = %v, want ErrUnknown", err)
	}
	// fig2 is analytic: registered, but with no traced runner.
	if err := run([]string{"record", "fig2"}, new(bytes.Buffer)); !errors.Is(err, expt.ErrNoTrace) {
		t.Errorf("untraced ID error = %v, want ErrNoTrace", err)
	}
	if err := run([]string{"record", "-format", "xml", "fig11b"}, new(bytes.Buffer)); err == nil {
		t.Error("bad -format accepted")
	}
}

func TestValidateRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte(`{"seq":0,"clock":"lunar","t":1,"kind":"x","ph":"i"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"validate", path}, new(bytes.Buffer)); err == nil {
		t.Error("corrupt trace validated")
	}
}
