// Command hemtrace works with simulation event traces (internal/trace):
// it records a traced experiment from the registry, filters and converts
// existing trace files, and summarises them into event counts, span
// durations and time-in-mode tables. JSONL is the interchange format;
// Chrome trace JSON (chrome://tracing, Perfetto) is the viewer format.
//
// Usage:
//
//	hemtrace record   [-o file] [-format jsonl|chrome] <experiment-id>
//	hemtrace filter   [-kind k] [-track prefix] [-o file] <in.jsonl>
//	hemtrace convert  [-format jsonl|chrome] [-o file] <in.jsonl>
//	hemtrace summarize <in.jsonl>
//	hemtrace prof     [-o file] <in.jsonl>
//	hemtrace validate  <in.jsonl>
//	hemtrace list
//
// "-" reads from stdin; -o defaults to stdout. For record and convert
// with no explicit -format, an -o ending in .json selects the Chrome
// format, anything else JSONL.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/expt"
	"repro/internal/prof"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hemtrace: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "record":
		return cmdRecord(rest, stdout)
	case "filter":
		return cmdFilter(rest, stdout)
	case "convert":
		return cmdConvert(rest, stdout)
	case "summarize":
		return cmdSummarize(rest, stdout)
	case "prof":
		return cmdProf(rest, stdout)
	case "validate":
		return cmdValidate(rest, stdout)
	case "list":
		return cmdList(stdout)
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: hemtrace record|filter|convert|summarize|prof|validate|list (see the command doc)")
}

// cmdList prints the experiments with traced runners.
func cmdList(stdout io.Writer) error {
	for _, id := range expt.TracedIDs() {
		fmt.Fprintln(stdout, id)
	}
	return nil
}

// cmdRecord re-runs one traced experiment and writes its events.
func cmdRecord(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hemtrace record", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "", "jsonl or chrome (default from -o extension, else jsonl)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("record wants exactly one experiment ID (hemtrace list shows the traced ones)")
	}
	f := trace.FormatJSONL
	if *format != "" {
		var err error
		if f, err = namedFormat(*format); err != nil {
			return err
		}
	} else if isJSONExt(*out) {
		f = trace.FormatChrome
	}
	events, err := expt.TraceEvents(fs.Arg(0))
	if err != nil {
		return err
	}
	return writeOut(*out, f, events, stdout)
}

// cmdFilter keeps the events matching -kind / -track and re-emits JSONL.
func cmdFilter(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hemtrace filter", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	kind := fs.String("kind", "", "keep only events of this kind (e.g. mppt.retrack)")
	track := fs.String("track", "", "keep only events whose track has this prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := readIn(fs.Args())
	if err != nil {
		return err
	}
	events = trace.Filter(events, func(ev trace.Event) bool {
		if *kind != "" && ev.Kind != *kind {
			return false
		}
		if *track != "" && !strings.HasPrefix(ev.Track, *track) {
			return false
		}
		return true
	})
	return writeOut(*out, trace.FormatJSONL, events, stdout)
}

// cmdConvert rewrites a trace in another format.
func cmdConvert(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hemtrace convert", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "", "jsonl or chrome (default from -o extension, else chrome)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := readIn(fs.Args())
	if err != nil {
		return err
	}
	var f string
	switch {
	case *format != "":
		if f, err = namedFormat(*format); err != nil {
			return err
		}
	case *out == "" || isJSONExt(*out):
		f = trace.FormatChrome // convert's default output is the viewer format
	default:
		f = trace.FormatJSONL
	}
	return writeOut(*out, f, events, stdout)
}

// cmdSummarize prints the event-count / span / time-in-mode report.
func cmdSummarize(args []string, stdout io.Writer) error {
	events, err := readIn(args)
	if err != nil {
		return err
	}
	return trace.Summarize(events).Write(stdout)
}

// cmdProf rebuilds an approximate energy profile from recorded events and
// writes it as gzipped pprof protobuf (prof.FromTrace documents what is —
// and is not — recoverable from a trace).
func cmdProf(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hemtrace prof", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := readIn(fs.Args())
	if err != nil {
		return err
	}
	p := prof.FromTrace(events)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := prof.WritePprof(f, p); err != nil {
			return err
		}
		return f.Close()
	}
	return prof.WritePprof(stdout, p)
}

// cmdValidate checks the trace file and reports its size; a bad event
// (unknown clock or phase, non-monotonic sequence) is a hard error.
func cmdValidate(args []string, stdout io.Writer) error {
	events, err := readIn(args)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ok: %d events, %d kinds\n", len(events), len(trace.Kinds(events)))
	return nil
}

// readIn loads the single JSONL input ("-" or no argument means stdin),
// validating every event on the way in.
func readIn(args []string) ([]trace.Event, error) {
	if len(args) > 1 {
		return nil, fmt.Errorf("want at most one input file (got %d)", len(args))
	}
	if len(args) == 0 || args[0] == "-" {
		return trace.ReadJSONL(os.Stdin)
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", args[0], err)
	}
	return events, nil
}

// namedFormat maps an explicit -format value to a trace format.
func namedFormat(name string) (string, error) {
	switch name {
	case "jsonl":
		return trace.FormatJSONL, nil
	case "chrome":
		return trace.FormatChrome, nil
	default:
		return "", fmt.Errorf("unknown format %q (want jsonl or chrome)", name)
	}
}

// isJSONExt reports whether the path's extension marks a Chrome trace.
func isJSONExt(path string) bool {
	return strings.EqualFold(filepath.Ext(path), ".json")
}

// writeOut renders the events to -o, or stdout when empty.
func writeOut(out, format string, events []trace.Event, stdout io.Writer) error {
	if out == "" {
		return trace.Write(stdout, format, events)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, format, events); err != nil {
		return err
	}
	return f.Close()
}
