package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTrackedPolicy(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-duration", "0.5", "-policy", "tracked"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"weather:", "tracker:", "recognition frames", "energy harvested"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFixedAndMEPPolicies(t *testing.T) {
	for _, policy := range []string{"fixed", "mep"} {
		var b strings.Builder
		if err := run([]string{"-duration", "0.3", "-policy", policy}, &b); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !strings.Contains(b.String(), "policy \""+policy+"\"") {
			t.Errorf("%s: summary missing", policy)
		}
	}
}

func TestRunValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-duration", "-1"}, &b); err == nil {
		t.Error("negative duration accepted")
	}
	if err := run([]string{"-cloudiness", "2"}, &b); err == nil {
		t.Error("absurd cloudiness accepted")
	}
	if err := run([]string{"-duration", "0.2", "-policy", "nonsense"}, &b); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-duration", "0.3", "-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-duration", "0.3", "-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different campaigns")
	}
}

// TestCampaignFanOut checks the multi-campaign path: per-seed headers in
// seed order, deterministic bytes regardless of the worker count.
func TestCampaignFanOut(t *testing.T) {
	outFor := func(jobs string) string {
		var b strings.Builder
		if err := run([]string{"-duration", "0.2", "-seed", "3", "-campaigns", "3", "-j", jobs}, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := outFor("4")
	i3 := strings.Index(out, "== campaign seed=3 ==")
	i4 := strings.Index(out, "== campaign seed=4 ==")
	i5 := strings.Index(out, "== campaign seed=5 ==")
	if i3 < 0 || i4 < 0 || i5 < 0 || !(i3 < i4 && i4 < i5) {
		t.Fatalf("campaign headers missing or out of order:\n%s", out)
	}
	if got := outFor("1"); got != out {
		t.Error("fan-out output differs between -j 1 and -j 4")
	}
}

// TestCampaignFanOutBatchParity: grouping consecutive seeds into worker
// jobs with -batch must not change a byte of the fan-out output.
func TestCampaignFanOutBatchParity(t *testing.T) {
	outFor := func(batch, jobs string) string {
		var b strings.Builder
		args := []string{"-duration", "0.2", "-seed", "3", "-campaigns", "5", "-j", jobs, "-batch", batch}
		if err := run(args, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	ref := outFor("1", "1")
	for _, tc := range [][2]string{{"2", "1"}, {"2", "4"}, {"5", "4"}, {"7", "2"}} {
		if got := outFor(tc[0], tc[1]); got != ref {
			t.Errorf("-batch %s -j %s: output differs from -batch 1 -j 1", tc[0], tc[1])
		}
	}
	var b strings.Builder
	if err := run([]string{"-batch", "0"}, &b); err == nil {
		t.Error("batch=0 accepted")
	}
}

func TestCampaignFanOutValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-campaigns", "0"}, &b); err == nil {
		t.Error("campaigns=0 accepted")
	}
	if err := run([]string{"-campaigns", "2", "-csv", "x.csv"}, &b); err == nil {
		t.Error("fan-out with -csv accepted")
	}
}

func TestTraceCSVExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	var b strings.Builder
	if err := run([]string{"-duration", "0.2", "-csv", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y\n") {
		t.Error("csv header missing")
	}
	if !strings.Contains(string(data), "irradiance") {
		t.Error("csv series missing")
	}
}

// TestScenarioRun drives the -scenario path: the report renders, is
// deterministic across -j, and -csv exports the rendered light trace.
func TestScenarioRun(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	text := `{"name":"n","seed":4,"source":{"kind":"indoor"},` +
		`"workload":{"job_cycles":5e6,"arrivals":{"process":"none"}},` +
		`"geometry":{"nodes":2,"horizon_s":0.2,"step_s":1e-4}}`
	if err := os.WriteFile(spec, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "light.csv")
	var a, b strings.Builder
	if err := run([]string{"-scenario", spec, "-j", "1", "-csv", csv}, &a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), "== SCENARIO: n ==") {
		t.Fatalf("unexpected report:\n%s", a.String())
	}
	data, err := os.ReadFile(csv)
	if err != nil || !strings.Contains(string(data), "irradiance") {
		t.Errorf("csv export missing or malformed: %v", err)
	}
	if err := run([]string{"-scenario", spec, "-j", "8"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), b.String()) {
		t.Error("-j 8 report differs from -j 1")
	}
	var c strings.Builder
	if err := run([]string{"-scenario", spec, "-campaigns", "2"}, &c); err == nil {
		t.Error("-scenario with -campaigns accepted")
	}
	if err := run([]string{"-scenario", filepath.Join(dir, "missing.json")}, &c); err == nil {
		t.Error("missing spec file accepted")
	}
}
