// Command hemnode runs a configurable battery-less sensor-node campaign:
// a weather trace powers the node while recognition jobs execute under a
// chosen energy-management policy. It is the flag-driven version of the
// sensornode example, for exploring scenarios without editing code.
//
// With -campaigns N > 1 it fans N campaigns (seed, seed+1, ...) out over a
// worker pool (-j), grouping -batch consecutive seeds into each worker job,
// and prints their reports in seed order; the output is deterministic and
// independent of both the worker count and the batch size.
//
// Usage:
//
//	hemnode [-duration 6] [-seed 7] [-policy tracked|fixed|mep]
//	        [-cloudiness 0.4] [-cap 100e-6] [-csv trace.csv]
//	        [-trace events.jsonl] [-profile energy.pb.gz]
//	        [-campaigns 1] [-j N] [-batch 1]
//	hemnode -scenario spec.json [-csv trace.csv] [-trace events.jsonl]
//	        [-profile energy.pb.gz] [-j N]
//
// With -scenario the command runs a declarative scenario spec
// (internal/scenario) instead of a weather campaign: the spec picks the
// energy source (sky, bench light, piezo harvester, indoor lighting, or a
// recorded trace), the workload and the population size; -csv then exports
// the rendered light trace of the shared environment.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/cap"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/imgproc"
	"repro/internal/plot"
	"repro/internal/prof"
	"repro/internal/pv"
	"repro/internal/reg"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/weather"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hemnode: %v\n", err)
		os.Exit(1)
	}
}

// campaignConfig carries the validated flags of one campaign.
type campaignConfig struct {
	duration   float64
	seed       int64
	policy     string
	cloudiness float64
	capacity   float64
	csvPath    string
	tracePath  string
	profPath   string
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hemnode", flag.ContinueOnError)
	var (
		duration   = fs.Float64("duration", 4.0, "campaign length (simulated seconds)")
		seed       = fs.Int64("seed", 7, "weather random seed")
		policy     = fs.String("policy", "tracked", "energy policy: tracked, fixed, or mep")
		cloudiness = fs.Float64("cloudiness", 0.4, "fraction of time under cloud (0..0.9)")
		capacity   = fs.Float64("cap", 100e-6, "storage capacitance (farads)")
		csvPath    = fs.String("csv", "", "write the irradiance trace to this CSV file")
		tracePath  = fs.String("trace", "", "write simulation events to this file (.json selects Chrome trace format, else JSONL)")
		profPath   = fs.String("profile", "", "write the campaign's energy-flow pprof profile to this file")
		scenPath   = fs.String("scenario", "", "run the declarative scenario spec in this JSON file (internal/scenario) instead of a weather campaign")
		campaigns  = fs.Int("campaigns", 1, "number of campaigns to fan out (seeds seed..seed+N-1)")
		batch      = fs.Int("batch", 1, "consecutive campaigns one worker job runs back to back; output bytes are identical at every batch size")
		jobs       = fs.Int("j", runtime.NumCPU(), "campaigns to run in parallel")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenPath != "" {
		if *campaigns != 1 {
			return fmt.Errorf("-scenario runs its own population; drop -campaigns")
		}
		return runScenario(*scenPath, *jobs, *csvPath, *tracePath, *profPath, stdout)
	}
	if *duration <= 0 || *capacity <= 0 {
		return fmt.Errorf("duration and cap must be positive")
	}
	if *cloudiness < 0 || *cloudiness > 0.9 {
		return fmt.Errorf("cloudiness %g out of [0, 0.9]", *cloudiness)
	}
	if *campaigns < 1 {
		return fmt.Errorf("campaigns must be >= 1")
	}
	if *batch < 1 {
		return fmt.Errorf("batch must be >= 1")
	}
	if *campaigns > 1 && *csvPath != "" {
		return fmt.Errorf("-csv supports a single campaign (run fan-outs without it)")
	}
	if *campaigns > 1 && *tracePath != "" {
		return fmt.Errorf("-trace supports a single campaign (run fan-outs without it)")
	}
	if *campaigns > 1 && *profPath != "" {
		return fmt.Errorf("-profile supports a single campaign (run fan-outs without it)")
	}

	cfg := campaignConfig{
		duration:   *duration,
		seed:       *seed,
		policy:     *policy,
		cloudiness: *cloudiness,
		capacity:   *capacity,
		csvPath:    *csvPath,
		tracePath:  *tracePath,
		profPath:   *profPath,
	}
	if *campaigns == 1 {
		return campaign(cfg, stdout)
	}

	// Fan out in batches: each job runs a window of consecutive seeds back
	// to back, separating campaigns inside the window exactly as the flusher
	// separates jobs, so the stdout bytes are independent of -batch (and of
	// -j, as ever).
	var work []runner.Job
	for lo := 0; lo < *campaigns; lo += *batch {
		hi := lo + *batch
		if hi > *campaigns {
			hi = *campaigns
		}
		lo := lo
		id := fmt.Sprintf("seed=%d", cfg.seed+int64(lo))
		if hi-lo > 1 {
			id = fmt.Sprintf("seed=%d..%d", cfg.seed+int64(lo), cfg.seed+int64(hi-1))
		}
		work = append(work, runner.Job{
			ID: id,
			Run: func(w io.Writer) error {
				for i := lo; i < hi; i++ {
					if i > lo {
						fmt.Fprintln(w)
					}
					c := cfg
					c.seed = cfg.seed + int64(i)
					fmt.Fprintf(w, "== campaign seed=%d ==\n", c.seed)
					if err := campaign(c, w); err != nil {
						return err
					}
				}
				return nil
			},
		})
	}
	first := true
	return runner.Stream(work, *jobs, func(r runner.Result) error {
		if !first {
			fmt.Fprintln(stdout)
		}
		first = false
		if _, err := stdout.Write(r.Output); err != nil {
			return err
		}
		if r.Err != nil {
			return fmt.Errorf("campaign %s: %w", r.ID, r.Err)
		}
		return nil
	})
}

// runScenario executes a declarative scenario spec (internal/scenario):
// the node-explorer view of the same engine hemsim -scenario drives. The
// report bytes depend only on the spec; -csv exports the rendered light
// trace of the shared environment.
func runScenario(specPath string, workers int, csvPath, tracePath, profPath string, stdout io.Writer) error {
	specText, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	spec, err := scenario.ParseScenario(specText)
	if err != nil {
		return err
	}
	cfg := scenario.Config{Spec: spec, Workers: workers}
	var rec *trace.Recorder
	if tracePath != "" {
		rec = trace.NewRecorder()
		cfg.Tracer = rec
	}
	if profPath != "" {
		cfg.Profile = prof.New()
		cfg.ProfileScope = "hemnode"
	}
	rep, err := scenario.Run(cfg)
	if err != nil {
		return err
	}
	if err := rep.Report(stdout); err != nil {
		return err
	}
	if csvPath != "" {
		if err := writeTraceCSV(csvPath, rep.SourceSamples()); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace written to %s\n", csvPath)
	}
	if rec != nil {
		if err := writeEvents(tracePath, rec.Events()); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace events written to %s (%d events)\n", tracePath, rec.Len())
	}
	if profPath != "" {
		f, err := os.Create(profPath)
		if err != nil {
			return fmt.Errorf("create profile file: %w", err)
		}
		defer f.Close()
		if err := prof.WritePprof(f, cfg.Profile); err != nil {
			return fmt.Errorf("write profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "energy profile written to %s\n", profPath)
	}
	return nil
}

// campaign runs one weather-driven campaign and writes its report.
func campaign(cfg campaignConfig, stdout io.Writer) error {
	// Weather: dwell times chosen so the cloudy fraction matches the flag.
	clearDwell := 2.0 * (1 - cfg.cloudiness)
	cloudyDwell := 2.0 * cfg.cloudiness
	if cloudyDwell == 0 {
		cloudyDwell = 1e-9
	}
	gen := weather.NewGenerator(rand.New(rand.NewSource(cfg.seed)),
		weather.WithDwellTimes(clearDwell, cloudyDwell),
		weather.WithCloudAttenuation(0.2, 0.07),
		weather.WithRelaxationTime(0.3),
	)
	wx, err := gen.Trace(cfg.duration, 0.005, nil)
	if err != nil {
		return fmt.Errorf("weather: %w", err)
	}
	minIrr, meanIrr, maxIrr := wx.Stats()
	fmt.Fprintf(stdout, "weather: %.1f s, light min/mean/max = %.0f%%/%.0f%%/%.0f%%\n",
		cfg.duration, minIrr*100, meanIrr*100, maxIrr*100)
	if cfg.csvPath != "" {
		if err := writeTraceCSV(cfg.csvPath, wx); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace written to %s\n", cfg.csvPath)
	}

	cell := pv.NewCell()
	proc := cpu.NewProcessor()
	sc := reg.NewSC()
	storage, err := cap.New(cfg.capacity, 1.0, 2.0)
	if err != nil {
		return fmt.Errorf("capacitor: %w", err)
	}

	var rec *trace.Recorder
	var tracer trace.Tracer // stays nil (tracing off) without -trace
	if cfg.tracePath != "" {
		rec = trace.NewRecorder()
		tracer = rec
	}
	var profile *prof.Profile
	var led *prof.Ledger // stays nil (profiling off) without -profile
	if cfg.profPath != "" {
		profile = prof.New()
		led = profile.Ledger(prof.Scope{Experiment: "hemnode", Node: cfg.policy})
	}

	var cycles, harvested float64
	switch cfg.policy {
	case "tracked":
		mgr := core.NewManager(core.NewSystem(cell, proc), sc)
		res, err := mgr.RunTracked(core.TrackedRunConfig{
			Cap:        storage,
			Irradiance: wx.At,
			Levels:     []float64{0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0},
			V1:         0.95,
			V2:         0.85,
			Duration:   cfg.duration,
			Step:       20e-6,
			Tracer:     tracer,
			TraceTrack: cfg.policy,
			Ledger:     led,
		})
		if err != nil {
			return fmt.Errorf("tracked run: %w", err)
		}
		cycles, harvested = res.Outcome.CyclesDone, res.Outcome.EnergyHarvested
		fmt.Fprintf(stdout, "tracker: %d estimates, %d retargets\n", len(res.Estimates), res.Retargets)
	case "fixed", "mep":
		supply := 0.55
		if cfg.policy == "mep" {
			supply, _ = proc.ConventionalMEP()
		}
		sim, err := circuit.New(circuit.Config{
			Cell:       cell,
			Proc:       proc,
			Reg:        sc,
			Cap:        storage,
			Irradiance: wx.At,
			Controller: &circuit.FixedPoint{Supply: supply},
			Step:       20e-6,
			MaxTime:    cfg.duration,
			Tracer:     tracer,
			TraceTrack: cfg.policy,
			Ledger:     led,
		})
		if err != nil {
			return fmt.Errorf("assemble: %w", err)
		}
		out, err := sim.Run()
		if err != nil {
			return fmt.Errorf("run: %w", err)
		}
		cycles, harvested = out.CyclesDone, out.EnergyHarvested
	default:
		return fmt.Errorf("unknown policy %q (want tracked, fixed, or mep)", cfg.policy)
	}

	frame := float64(imgproc.DefaultCostModel().FrameCycles(64, 64, 512, imgproc.NumClasses))
	fmt.Fprintf(stdout, "policy %q: %.2f G cycles executed = %.0f recognition frames\n",
		cfg.policy, cycles/1e9, cycles/frame)
	fmt.Fprintf(stdout, "energy harvested: %.1f mJ; storage left at %.2f V\n",
		harvested*1e3, storage.Voltage())
	if rec != nil {
		if err := writeEvents(cfg.tracePath, rec.Events()); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace events written to %s (%d events)\n", cfg.tracePath, rec.Len())
	}
	if profile != nil {
		f, err := os.Create(cfg.profPath)
		if err != nil {
			return fmt.Errorf("create profile file: %w", err)
		}
		defer f.Close()
		if err := prof.WritePprof(f, profile); err != nil {
			return fmt.Errorf("write profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "energy profile written to %s\n", cfg.profPath)
	}
	return nil
}

// writeEvents exports the campaign's simulation events; the extension
// selects the format (.json is a Chrome trace, anything else JSONL).
func writeEvents(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create trace file: %w", err)
	}
	defer f.Close()
	format := trace.FormatJSONL
	if strings.EqualFold(filepath.Ext(path), ".json") {
		format = trace.FormatChrome
	}
	if err := trace.Write(f, format, events); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	return f.Close()
}

// writeTraceCSV exports the irradiance trace.
func writeTraceCSV(path string, tr *weather.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s := plot.Series{Name: "irradiance"}
	for i, v := range tr.Samples {
		s.X = append(s.X, float64(i)*tr.Step)
		s.Y = append(s.Y, v)
	}
	if err := plot.WriteCSV(f, s); err != nil {
		return err
	}
	return f.Close()
}
