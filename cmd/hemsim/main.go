// Command hemsim regenerates the paper's evaluation figures from the
// calibrated models. Run with an experiment ID (fig2 ... fig11b, headline),
// a comma-separated list, or "all".
//
// Usage:
//
//	hemsim [-list] [-csv dir] [experiment...]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/expt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hemsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hemsim", flag.ContinueOnError)
	list := fs.Bool("list", false, "list available experiments and exit")
	csvDir := fs.String("csv", "", "also write each experiment's series to <dir>/<id>.csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	registry := expt.Registry()
	if *list {
		for _, name := range expt.Names() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	var ids []string
	for _, t := range targets {
		for _, id := range strings.Split(t, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if id == "all" {
				ids = append(ids, expt.Names()...)
				continue
			}
			ids = append(ids, id)
		}
	}

	for i, id := range ids {
		runner, ok := registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if err := runner(stdout); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCSV exports one experiment's series to <dir>/<id>.csv, skipping
// experiments that only produce summary metrics.
func writeCSV(dir, id string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create csv dir: %w", err)
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := expt.WriteCSV(id, f); err != nil {
		if errors.Is(err, expt.ErrNoSeries) {
			os.Remove(path)
			return nil
		}
		return fmt.Errorf("csv %s: %w", id, err)
	}
	return f.Close()
}
