// Command hemsim regenerates the paper's evaluation figures from the
// calibrated models. Run with an experiment ID (fig2 ... fig11b, headline),
// a comma-separated list, or "all". Experiments run on a worker pool (-j)
// with deterministic output: each renders into its own buffer and the
// buffers are flushed in registry order, so the report bytes are identical
// for every -j (only the trailing timing footer varies).
//
// With -faults the traced pass of chaos-capable experiments re-runs under
// the fault plan in the given JSON file (internal/fault): brownout windows
// cut the light, NVM faults tear checkpoints, and every injection lands in
// the -trace output as a fault.* event. Same plan + same seed is
// byte-identical for every -j.
//
// With -fleet the command runs the shared-clock multi-node engine
// (internal/fleet) instead of the figure experiments: N battery-less
// nodes, each with a domain-separated weather stream derived from -seed,
// advanced in epochs on the worker pool as contiguous lane groups of at
// most -batch nodes (internal/circuit's batched stepper). The report on
// stdout is byte-identical for every -j, every -batch and every repetition
// of the same spec; the nodes/sec line goes to stderr so piping stdout
// stays deterministic. Event-horizon fast-forward (-ffwd, on by default)
// skips provably-inert node spans — collapsed nodes under an exactly-dark
// sky (see a spec's dark= key) — without changing a byte of the report;
// -ffwd=false forces verbatim stepping, which the ffwd-smoke CI job uses
// to cross-check the two modes.
//
// With -scenario the command runs a declarative scenario spec
// (internal/scenario) instead of the figure experiments: one JSON document
// composes an energy source (clear or cloudy sky, bench light, a piezo
// impulse-train harvester, a staged indoor-lighting ladder, or a recorded
// trace), a deadline-plus-radio workload with stochastic event arrivals,
// and the run geometry. The report bytes depend only on the spec — parity
// across -j and -batch like every other engine. -record captures the
// rendered light trace in a versioned replay file; pointing a spec's
// source at it ({"kind":"trace","path":...}) reproduces the run byte for
// byte.
//
// With -profile the profiled pass of profile-capable experiments re-runs
// with an exact energy-and-time ledger attached to every integration step
// and writes the merged result as a gzipped pprof profile: two sample
// types, sim_seconds and energy_joules, attributed along component/state
// stacks (cpu/sprint, pv/harvest, ...). Render flamegraphs with
// `go tool pprof -http=: <file>`. Profile bytes are byte-identical for
// every -j and every -batch.
//
// Usage:
//
//	hemsim [-list] [-csv dir] [-trace file] [-profile file.pb.gz]
//	       [-faults plan.json] [-j N] [-timing] [experiment...]
//	hemsim -fleet n=1000[,horizon=0.05,...] [-seed S] [-trace file]
//	       [-profile file.pb.gz] [-progress] [-j N] [-batch B] [-ffwd=bool]
//	hemsim -scenario spec.json [-record trace.json] [-trace file]
//	       [-profile file.pb.gz] [-csv dir] [-j N] [-batch B]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/plot"
	"repro/internal/prof"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hemsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hemsim", flag.ContinueOnError)
	list := fs.Bool("list", false, "list available experiments and exit")
	csvDir := fs.String("csv", "", "also write each experiment's series to <dir>/<id>.csv")
	jobs := fs.Int("j", runtime.NumCPU(), "experiments to run in parallel")
	timing := fs.Bool("timing", true, "print the per-experiment timing footer on multi-experiment runs")
	traceFile := fs.String("trace", "", "write traced experiments' simulation events to <file> (.json selects Chrome trace format, else JSONL)")
	traceWall := fs.Bool("trace-wall", false, "add wall-clock runner spans (worker, queue wait) to the -trace output; non-deterministic")
	faultsFile := fs.String("faults", "", "run chaos-capable experiments under the fault plan in <file> (JSON; requires -trace)")
	profileFile := fs.String("profile", "", "write an energy-flow pprof profile of profile-capable experiments (or the -fleet run) to <file>")
	fleetSpec := fs.String("fleet", "", "run a shared-clock node fleet with the given spec (e.g. n=1000 or n=500,horizon=0.1) instead of experiments")
	scenarioFile := fs.String("scenario", "", "run the declarative scenario spec in <file> (JSON; internal/scenario) instead of experiments")
	recordFile := fs.String("record", "", "with -scenario, also write the rendered light trace to <file> for later replay via a kind=trace source")
	progress := fs.Bool("progress", false, "with -fleet, print a per-epoch progress ticker to stderr")
	seed := fs.Int64("seed", 0, "master seed for -fleet (overrides a seed= key in the spec)")
	batch := fs.Int("batch", 0, "nodes one -fleet worker advances as a contiguous lane group per epoch; 0 splits the fleet evenly across workers")
	ffwd := fs.Bool("ffwd", true, "with -fleet, fast-forward provably-inert node spans (event-horizon stepping); report bytes are identical either way")
	// Accept flags before and after the experiment IDs (`hemsim all -j 4`):
	// the stdlib parser stops at the first positional, so re-enter it after
	// consuming each one.
	var targets []string
	for rest := args; ; {
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rest = fs.Args()
		if len(rest) == 0 {
			break
		}
		targets = append(targets, rest[0])
		rest = rest[1:]
	}
	if *scenarioFile != "" {
		if *fleetSpec != "" {
			return errors.New("-scenario and -fleet are mutually exclusive")
		}
		return runScenario(*scenarioFile, *jobs, *batch, *traceFile, *profileFile, *csvDir, *recordFile, stdout)
	}
	if *recordFile != "" {
		return errors.New("-record requires -scenario: it captures the scenario's rendered light trace")
	}
	if *fleetSpec != "" {
		seedSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedSet = true
			}
		})
		return runFleet(*fleetSpec, *seed, seedSet, *jobs, *batch, *traceFile, *profileFile, *progress, !*ffwd, stdout)
	}
	var plan *fault.Plan
	if *faultsFile != "" {
		if *traceFile == "" {
			return errors.New("-faults requires -trace: injections are reported as fault.* trace events")
		}
		p, err := fault.LoadPlan(*faultsFile)
		if err != nil {
			return err
		}
		plan = &p
	}
	registry := expt.Registry()
	if *list {
		for _, name := range expt.Names() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}

	if len(targets) == 0 {
		targets = []string{"all"}
	}
	var ids []string
	for _, t := range targets {
		for _, id := range strings.Split(t, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if id == "all" {
				ids = append(ids, expt.Names()...)
				continue
			}
			ids = append(ids, id)
		}
	}

	var work []runner.Job
	batches := make([][]trace.Event, len(ids))  // per-job events, merged in registry order
	profiles := make([]*prof.Profile, len(ids)) // per-job profiles, merged in registry order
	for i, id := range ids {
		e, ok := registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		job := runner.Job{ID: id, Run: e.Run}
		if *csvDir != "" {
			// CSV export re-runs the driver, so keep it inside the job to
			// parallelise it too; each job writes its own file.
			dir := *csvDir
			run := job.Run
			job.Run = func(w io.Writer) error {
				if err := run(w); err != nil {
					return err
				}
				return writeCSV(dir, id)
			}
		}
		if *traceFile != "" && e.Trace != nil {
			// The traced pass re-runs the driver too; each job fills its own
			// batch slot so the merge order (and so the output bytes) depend
			// only on registry order, never on worker scheduling.
			traced := e.Trace
			if plan != nil && e.Chaos != nil {
				// Under -faults the chaos pass replaces the traced pass:
				// same event stream plus the plan's injections.
				chaos := e.Chaos
				traced = func(tr trace.Tracer) error { return chaos(*plan, tr) }
			}
			run := job.Run
			job.Run = func(w io.Writer) error {
				if err := run(w); err != nil {
					return err
				}
				rec := trace.NewRecorder()
				if err := traced(trace.Prefixed(rec, id)); err != nil {
					return fmt.Errorf("trace %s: %w", id, err)
				}
				batches[i] = rec.Events()
				return nil
			}
		}
		if *profileFile != "" && e.Profile != nil {
			// The profiled pass re-runs the driver with ledgers attached;
			// per-job profiles keep the hot loops worker-private and the
			// merge deterministic (scopes are disjoint across experiments).
			profiled := e.Profile
			run := job.Run
			job.Run = func(w io.Writer) error {
				if err := run(w); err != nil {
					return err
				}
				pp := prof.New()
				if err := profiled(pp); err != nil {
					return fmt.Errorf("profile %s: %w", id, err)
				}
				profiles[i] = pp
				return nil
			}
		}
		work = append(work, job)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("create csv dir: %w", err)
		}
	}

	start := time.Now()
	var timings []runner.Result
	first := true
	err := runner.Stream(work, *jobs, func(r runner.Result) error {
		if !first {
			fmt.Fprintln(stdout)
		}
		first = false
		if _, werr := stdout.Write(r.Output); werr != nil {
			return werr
		}
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.ID, r.Err)
		}
		timings = append(timings, r)
		return nil
	})
	if err != nil {
		return err
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile, batches, timings, *traceWall); err != nil {
			return err
		}
	}
	if *profileFile != "" {
		merged := prof.New()
		for _, pp := range profiles {
			if pp != nil {
				merged.Merge(pp)
			}
		}
		if err := writeProfile(*profileFile, merged); err != nil {
			return err
		}
	}
	if *timing && len(work) > 1 {
		writeTimingFooter(stdout, timings, *jobs, time.Since(start))
	}
	return nil
}

// runScenario executes one declarative scenario run (internal/scenario).
// The report bytes on stdout depend only on the spec — byte-identical for
// every -j and -batch — so the wall-clock rate goes to stderr. With
// -record, the rendered light trace is written in the versioned replay
// format: swapping the spec's source for {"kind":"trace","path":...}
// reproduces this run's report byte for byte.
func runScenario(specPath string, workers, batch int, traceFile, profileFile, csvDir, recordFile string, stdout io.Writer) error {
	specText, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	spec, err := scenario.ParseScenario(specText)
	if err != nil {
		return err
	}
	cfg := scenario.Config{Spec: spec, Workers: workers, Batch: batch}
	var rec *trace.Recorder
	if traceFile != "" {
		rec = trace.NewRecorder()
		cfg.Tracer = rec
	}
	if profileFile != "" {
		cfg.Profile = prof.New()
		cfg.ProfileScope = "scenario"
	}
	start := time.Now()
	rep, err := scenario.Run(cfg)
	if err != nil {
		return err
	}
	if err := rep.Report(stdout); err != nil {
		return err
	}
	if recordFile != "" {
		if err := scenario.WriteTraceFile(recordFile, rep.SourceSamples()); err != nil {
			return err
		}
	}
	if traceFile != "" {
		if err := writeTrace(traceFile, [][]trace.Event{rec.Events()}, nil, false); err != nil {
			return err
		}
	}
	if profileFile != "" {
		if err := writeProfile(profileFile, cfg.Profile); err != nil {
			return err
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return fmt.Errorf("create csv dir: %w", err)
		}
		name := spec.Name
		if name == "" {
			name = "scenario"
		}
		path := filepath.Join(csvDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		defer f.Close()
		if err := plot.WriteCSV(f, rep.Series()...); err != nil {
			return fmt.Errorf("csv %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "hemsim: scenario %s: %d node(s) in %s (j=%d)\n",
		specPath, spec.Geometry.Nodes, elapsed.Round(time.Millisecond), workers)
	return nil
}

// runFleet executes one fleet run. The report bytes on stdout depend only
// on the resolved spec — the determinism contract extends the experiments'
// -j parity to fleets — so the wall-clock rate is printed to stderr.
func runFleet(specText string, seed int64, seedSet bool, workers, batch int, traceFile, profileFile string, progress, noFastForward bool, stdout io.Writer) error {
	spec, err := fleet.ParseSpec(specText)
	if err != nil {
		return err
	}
	if seedSet {
		spec.Seed = seed
	}
	cfg := spec.Config()
	cfg.Workers = workers
	cfg.Batch = batch
	cfg.NoFastForward = noFastForward
	var rec *trace.Recorder
	if traceFile != "" {
		rec = trace.NewRecorder()
		cfg.Tracer = rec
	}
	if profileFile != "" {
		cfg.Profile = prof.New()
		cfg.ProfileScope = "fleet"
	}
	if progress {
		// The ticker goes to stderr so piped stdout stays deterministic.
		cfg.OnEpoch = func(s fleet.Snapshot) {
			fmt.Fprintf(os.Stderr, "hemsim: fleet t=%.4fs active=%d completed=%d browned_out=%d harvest=%.3fmJ\n",
				s.Time, s.Active, s.Completed, s.BrownedOut, s.Harvested*1e3)
		}
	}
	start := time.Now()
	rep, err := fleet.Run(cfg)
	if err != nil {
		return err
	}
	if err := rep.Report(stdout); err != nil {
		return err
	}
	if traceFile != "" {
		if err := writeTrace(traceFile, [][]trace.Event{rec.Events()}, nil, false); err != nil {
			return err
		}
	}
	if profileFile != "" {
		if err := writeProfile(profileFile, cfg.Profile); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	rate := "n/a"
	if secs := elapsed.Seconds(); secs > 0 {
		rate = fmt.Sprintf("%.0f", float64(spec.N)/secs)
	}
	fmt.Fprintf(os.Stderr, "hemsim: fleet %s: %d nodes in %s (%s nodes/s, j=%d)\n",
		spec, spec.N, elapsed.Round(time.Millisecond), rate, workers)
	return nil
}

// writeTrace merges the per-job event batches (in registry order, so the
// sim-clock portion is byte-identical for every -j) and writes them in the
// format the file extension selects. With wall enabled, each job also gets
// a wall-clock runner span carrying its worker and queue wait.
func writeTrace(path string, batches [][]trace.Event, timings []runner.Result, wall bool) error {
	events := trace.Merge(batches...)
	if wall {
		rec := trace.NewRecorder()
		for _, r := range timings {
			if r.Skipped {
				continue
			}
			queued := r.Queued.Seconds()
			trace.WallSpan(rec, "runner.job", queued, queued+r.Elapsed.Seconds(), r.ID, trace.Args{
				"worker": r.Worker, "queue_wait_s": queued,
			})
		}
		events = trace.Merge(events, rec.Events())
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create trace file: %w", err)
	}
	defer f.Close()
	if err := trace.Write(f, traceFormat(path), events); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	return f.Close()
}

// writeProfile writes the merged energy profile as gzipped pprof bytes.
func writeProfile(path string, p *prof.Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create profile file: %w", err)
	}
	defer f.Close()
	if err := prof.WritePprof(f, p); err != nil {
		return fmt.Errorf("write profile: %w", err)
	}
	return f.Close()
}

// traceFormat selects the export format from the file extension: .json is
// a Chrome trace (chrome://tracing, Perfetto), anything else JSONL.
func traceFormat(path string) string {
	if strings.EqualFold(filepath.Ext(path), ".json") {
		return trace.FormatChrome
	}
	return trace.FormatJSONL
}

// writeTimingFooter reports per-experiment wall-clock plus the aggregate
// speedup the worker pool achieved. Everything above the "-- timing" marker
// is byte-identical across -j values; the footer is the only part that
// varies run to run.
func writeTimingFooter(w io.Writer, timings []runner.Result, jobs int, wall time.Duration) {
	fmt.Fprintf(w, "\n-- timing (j=%d) --\n", jobs)
	var cpu time.Duration
	for _, r := range timings {
		fmt.Fprintf(w, "  %-18s %s\n", r.ID, r.Elapsed.Round(100*time.Microsecond))
		cpu += r.Elapsed
	}
	speedup := float64(cpu) / float64(wall)
	fmt.Fprintf(w, "  %d experiments in %s wall, %s cpu (%.1fx parallel)\n",
		len(timings), wall.Round(time.Millisecond), cpu.Round(time.Millisecond), speedup)
}

// writeCSV exports one experiment's series to <dir>/<id>.csv, skipping
// experiments that only produce summary metrics.
func writeCSV(dir, id string) error {
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := expt.WriteCSV(id, f); err != nil {
		if errors.Is(err, expt.ErrNoSeries) {
			os.Remove(path)
			return nil
		}
		return fmt.Errorf("csv %s: %w", id, err)
	}
	return f.Close()
}
