package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig2", "fig7b", "fig11b", "headline"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "LDO") {
		t.Error("fig3 report missing LDO")
	}
}

func TestRunCommaSeparated(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig3,fig4"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "Fig. 4") {
		t.Error("combined run missing a report")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig99"}, &b); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-csv", dir, "fig2,headline"}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatalf("fig2.csv missing: %v", err)
	}
	if !strings.HasPrefix(string(data), "series,x,y\n") {
		t.Error("csv header missing")
	}
	if !strings.Contains(string(data), "full sun") {
		t.Error("csv content missing")
	}
	// headline has no series: no file, no error.
	if _, err := os.Stat(filepath.Join(dir, "headline.csv")); !os.IsNotExist(err) {
		t.Error("headline.csv should not exist")
	}
}
