package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig2", "fig7b", "fig11b", "headline"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "LDO") {
		t.Error("fig3 report missing LDO")
	}
}

func TestRunCommaSeparated(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig3,fig4"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "Fig. 4") {
		t.Error("combined run missing a report")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig99"}, &b); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestParallelOutputByteIdentical is the engine's determinism contract:
// everything above the timing footer must not depend on -j.
func TestParallelOutputByteIdentical(t *testing.T) {
	const targets = "fig2,fig3,fig4,fig5,fig6a,headline"
	stripped := func(jobs string) string {
		var b strings.Builder
		if err := run([]string{"-j", jobs, targets}, &b); err != nil {
			t.Fatalf("-j %s: %v", jobs, err)
		}
		out := b.String()
		if i := strings.Index(out, "-- timing"); i >= 0 {
			out = out[:i]
		} else {
			t.Errorf("-j %s: timing footer missing from multi-experiment run", jobs)
		}
		return out
	}
	j1 := stripped("1")
	j8 := stripped("8")
	if j1 != j8 {
		t.Errorf("reports differ between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", j1, j8)
	}
}

// TestFleetBatchParity: the -fleet report bytes are independent of both
// the worker count and the lane-group size.
func TestFleetBatchParity(t *testing.T) {
	const spec = "n=12,seed=4,horizon=0.004,epoch=1e-3,step=2e-5"
	outFor := func(jobs, batch string) string {
		var b strings.Builder
		if err := run([]string{"-fleet", spec, "-j", jobs, "-batch", batch}, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	ref := outFor("1", "1")
	if ref == "" {
		t.Fatal("empty fleet report")
	}
	for _, tc := range [][2]string{{"4", "1"}, {"1", "5"}, {"4", "5"}, {"2", "100"}} {
		if got := outFor(tc[0], tc[1]); got != ref {
			t.Errorf("-j %s -batch %s: fleet report differs from -j 1 -batch 1", tc[0], tc[1])
		}
	}
}

func TestTimingFooter(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-j", "2", "fig3,fig4"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"-- timing (j=2) --", "fig3", "fig4", "experiments in"} {
		if !strings.Contains(out, want) {
			t.Errorf("timing footer missing %q:\n%s", want, out)
		}
	}
	// Single-experiment runs stay footer-free.
	b.Reset()
	if err := run([]string{"fig3"}, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "-- timing") {
		t.Error("single-experiment run printed a timing footer")
	}
	// And -timing=false silences it.
	b.Reset()
	if err := run([]string{"-timing=false", "fig3,fig4"}, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "-- timing") {
		t.Error("-timing=false still printed a footer")
	}
}

// TestFig9bCSVExport pins the series-export bugfix end to end: -csv must
// produce a waveform file for fig9b, not the "no plottable series" skip.
func TestFig9bCSVExport(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiment")
	}
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-csv", dir, "fig9b"}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig9b.csv"))
	if err != nil {
		t.Fatalf("fig9b.csv missing: %v", err)
	}
	if !strings.Contains(string(data), "sprint+bypass Vdd") {
		t.Error("fig9b.csv missing variant waveforms")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-csv", dir, "fig2,headline"}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatalf("fig2.csv missing: %v", err)
	}
	if !strings.HasPrefix(string(data), "series,x,y\n") {
		t.Error("csv header missing")
	}
	if !strings.Contains(string(data), "full sun") {
		t.Error("csv content missing")
	}
	// headline has no series: no file, no error.
	if _, err := os.Stat(filepath.Join(dir, "headline.csv")); !os.IsNotExist(err) {
		t.Error("headline.csv should not exist")
	}
}

// TestTraceParityAcrossWorkers extends the determinism contract to -trace:
// the merged event file must be byte-identical whatever -j was, and mixing
// traced and untraced experiments must not disturb it.
func TestTraceParityAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiments")
	}
	const targets = "fig8,fig2,fig11b"
	record := func(jobs string) []byte {
		path := filepath.Join(t.TempDir(), "trace.jsonl")
		var b strings.Builder
		if err := run([]string{"-j", jobs, "-trace", path, targets}, &b); err != nil {
			t.Fatalf("-j %s: %v", jobs, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("-j %s: %v", jobs, err)
		}
		return data
	}
	j1, j8 := record("1"), record("8")
	if !bytes.Equal(j1, j8) {
		t.Errorf("trace differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", j1, j8)
	}
	if len(j1) == 0 {
		t.Fatal("trace file empty")
	}
	// Tracks are namespaced by experiment ID, and the untraced fig2
	// contributes nothing.
	for _, line := range strings.Split(strings.TrimSpace(string(j1)), "\n") {
		if !strings.Contains(line, `"track":"fig8`) && !strings.Contains(line, `"track":"fig11b`) {
			t.Errorf("event outside the fig8/fig11b namespaces: %s", line)
		}
	}
}

// TestTraceWallSpans checks -trace-wall adds runner telemetry on the wall
// clock without touching the deterministic sim events.
func TestTraceWallSpans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var b strings.Builder
	if err := run([]string{"-j", "2", "-trace", path, "-trace-wall", "fig3,fig8"}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"runner.job"`) {
		t.Error("wall spans missing runner.job events")
	}
	if !strings.Contains(string(data), `"clock":"wall"`) {
		t.Error("runner spans should be on the wall clock")
	}
}

// TestTraceChromeExtension checks a .json -trace path switches to the
// Chrome trace format.
func TestTraceChromeExtension(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var b strings.Builder
	if err := run([]string{"-trace", path, "fig8"}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"traceEvents"`) {
		t.Error(".json trace is not in the Chrome format")
	}
}

// writeFaultPlan drops a canonical chaos plan into a temp dir: a blackout
// over the blinking profile plus an NVM that tears every second commit.
func writeFaultPlan(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.json")
	plan := `{"seed":7,"brownouts":[{"at_s":0.05,"duration_s":0.02}],` +
		`"random_brownouts":{"count":2,"mean_duration_s":0.01,"depth":0.1},` +
		`"nvm":{"fail_every_n":2,"restore_bitrot_prob":0.2}}`
	if err := os.WriteFile(path, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFaultsRequiresTrace(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-faults", writeFaultPlan(t), "fig2"}, &b)
	if err == nil || !strings.Contains(err.Error(), "-trace") {
		t.Errorf("-faults without -trace: err = %v, want a -trace hint", err)
	}
}

func TestFaultsBadPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(`{"nope":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-faults", path, "-trace", tracePath, "fig2"}, &b); err == nil {
		t.Error("malformed plan accepted")
	}
}

// TestFaultsParityAcrossWorkers extends the -j determinism contract to
// chaos runs: same plan, same seed, byte-identical trace whatever the
// worker count — the acceptance bar for the fault layer.
func TestFaultsParityAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiments")
	}
	plan := writeFaultPlan(t)
	const targets = "ext-intermittent,fig2,fig11b"
	record := func(jobs string) []byte {
		path := filepath.Join(t.TempDir(), "trace.jsonl")
		var b strings.Builder
		if err := run([]string{"-j", jobs, "-trace", path, "-faults", plan, targets}, &b); err != nil {
			t.Fatalf("-j %s: %v", jobs, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("-j %s: %v", jobs, err)
		}
		return data
	}
	j1, j8 := record("1"), record("8")
	if !bytes.Equal(j1, j8) {
		t.Errorf("chaos trace differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", j1, j8)
	}
	out := string(j1)
	for _, kind := range []string{"fault.plan", "fault.brownout", "fault.nvm-torn"} {
		if !strings.Contains(out, `"kind":"`+kind+`"`) {
			t.Errorf("chaos trace missing %s events", kind)
		}
	}
}

// scenarioSpecFile writes a fast scenario spec and returns its path.
func scenarioSpecFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{"name":"t","seed":9,` +
		`"source":{"kind":"kinetic","rate_hz":8,"impulse":0.5,"decay_s":0.2},` +
		`"workload":{"job_cycles":5e6,"aux_w":5e-5},` +
		`"geometry":{"nodes":3,"horizon_s":0.2,"step_s":1e-4}}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScenarioBatchParity extends the determinism contract to -scenario:
// byte-identical reports at every -j and -batch.
func TestScenarioBatchParity(t *testing.T) {
	spec := scenarioSpecFile(t)
	outFor := func(jobs, batch string) string {
		var b strings.Builder
		if err := run([]string{"-scenario", spec, "-j", jobs, "-batch", batch}, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	ref := outFor("1", "1")
	if !strings.Contains(ref, "== SCENARIO: t ==") {
		t.Fatalf("unexpected scenario report:\n%s", ref)
	}
	for _, tc := range [][2]string{{"2", "1"}, {"8", "1"}, {"1", "64"}, {"4", "2"}} {
		if got := outFor(tc[0], tc[1]); got != ref {
			t.Errorf("-j %s -batch %s: scenario report differs from -j 1 -batch 1", tc[0], tc[1])
		}
	}
}

// TestScenarioRecordReplay drives the record/replay loop through the CLI:
// -record captures the rendered light trace, a kind=trace spec replays it,
// and the two reports are byte-identical.
func TestScenarioRecordReplay(t *testing.T) {
	dir := t.TempDir()
	spec := scenarioSpecFile(t)
	rec := filepath.Join(dir, "rec.json")
	var orig strings.Builder
	if err := run([]string{"-scenario", spec, "-record", rec}, &orig); err != nil {
		t.Fatal(err)
	}
	replaySpec := filepath.Join(dir, "replay.json")
	text := `{"name":"t","seed":9,` +
		`"source":{"kind":"trace","path":` + strconv.Quote(rec) + `},` +
		`"workload":{"job_cycles":5e6,"aux_w":5e-5},` +
		`"geometry":{"nodes":3,"horizon_s":0.2,"step_s":1e-4}}`
	if err := os.WriteFile(replaySpec, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	var replayed strings.Builder
	if err := run([]string{"-scenario", replaySpec}, &replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.String() != orig.String() {
		t.Errorf("replayed report differs from the original:\n%s\n-- vs --\n%s",
			replayed.String(), orig.String())
	}
}

// TestScenarioFlagValidation: -record without -scenario, and -scenario
// with -fleet, both fail fast.
func TestScenarioFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-record", "x.json", "fig2"}, &b); err == nil {
		t.Error("-record without -scenario accepted")
	}
	if err := run([]string{"-scenario", "spec.json", "-fleet", "n=2"}, &b); err == nil {
		t.Error("-scenario with -fleet accepted")
	}
	if err := run([]string{"-scenario", filepath.Join(t.TempDir(), "missing.json")}, &b); err == nil {
		t.Error("missing spec file accepted")
	}
}
