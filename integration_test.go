package repro

// Integration tests: cross-module invariants of the whole system that no
// single package's tests can see — determinism of full transient runs,
// energy conservation under every controller, analytic-vs-simulated
// agreement for the scheduling model, and the full stack (weather +
// federated storage + MPPT) composing correctly.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cap"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/intermittent"
	"repro/internal/mppt"
	"repro/internal/pv"
	"repro/internal/reg"
	"repro/internal/sched"
	"repro/internal/weather"
)

// buildSim assembles a simulation around the given controller with shared
// defaults.
func buildSim(t *testing.T, ctl circuit.Controller, storage circuit.Storage, irr func(float64) float64, maxTime float64) *circuit.Simulator {
	t.Helper()
	sim, err := circuit.New(circuit.Config{
		Cell:       pv.NewCell(),
		Proc:       cpu.NewProcessor(),
		Reg:        reg.NewSC(),
		Cap:        storage,
		Irradiance: irr,
		Controller: ctl,
		Comparators: []circuit.Comparator{
			{Threshold: 1.0, Hysteresis: 0.004},
			{Threshold: 0.9, Hysteresis: 0.004},
		},
		Step:    4e-6,
		MaxTime: maxTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func mustCap(t *testing.T, c, v float64) *cap.Capacitor {
	t.Helper()
	st, err := cap.New(c, v, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// controllers under test, freshly constructed per call.
func allControllers(t *testing.T) map[string]func() circuit.Controller {
	t.Helper()
	cell := pv.NewCell()
	proc := cpu.NewProcessor()
	table := mppt.BuildTable(cell, []float64{0.25, 1.0}, func(_, _, p float64) (float64, float64, bool) {
		return 0.5, proc.FrequencyForPower(0.5, 0.6*p), false
	})
	return map[string]func() circuit.Controller{
		"fixed": func() circuit.Controller {
			return &circuit.FixedPoint{Supply: 0.5}
		},
		"direct": func() circuit.Controller {
			return circuit.DirectConnection{}
		},
		"deadline": func() circuit.Controller {
			return &sched.DeadlineController{Cycles: 3e6, Deadline: 15e-3, Sprint: 0.2, AllowBypass: true}
		},
		"tracker": func() circuit.Controller {
			return &mppt.Tracker{Table: table, V1Index: 0, V2Index: 1, InitialEntry: table.Len() - 1}
		},
		"perturb-observe": func() circuit.Controller {
			return &mppt.PerturbObserve{Supply: 0.5}
		},
		"intermittent": func() circuit.Controller {
			return &intermittent.Executor{
				Task:   intermittent.Task{TotalCycles: 3e6, StateBytes: 512},
				Policy: intermittent.PeriodicPolicy{Interval: 0.5e6},
				Supply: 0.5,
			}
		},
	}
}

// TestEnergyConservationAcrossControllers checks the first law on every
// controller: harvested = delivered + converter losses + storage delta,
// within integration error.
func TestEnergyConservationAcrossControllers(t *testing.T) {
	irr := circuit.StepIrradiance(1.0, 0.3, 8e-3)
	for name, mk := range allControllers(t) {
		t.Run(name, func(t *testing.T) {
			storage := mustCap(t, 100e-6, 1.0)
			e0 := storage.Energy()
			sim := buildSim(t, mk(), storage, irr, 20e-3)
			out, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			delta := storage.Energy() - e0
			balance := out.EnergyHarvested - out.EnergyDelivered - out.EnergyLost - delta
			scale := math.Max(out.EnergyHarvested+math.Abs(delta), 1e-9)
			if math.Abs(balance)/scale > 0.03 {
				t.Errorf("energy imbalance %.3g J (%.1f%%): harvested %.3g delivered %.3g lost %.3g dCap %.3g",
					balance, 100*math.Abs(balance)/scale,
					out.EnergyHarvested, out.EnergyDelivered, out.EnergyLost, delta)
			}
		})
	}
}

// TestDeterminism runs every controller twice with identical inputs and
// demands bit-identical outcomes — the foundation of reproducible
// experiments.
func TestDeterminism(t *testing.T) {
	irr := circuit.RampIrradiance(1.0, 0.1, 5e-3, 15e-3)
	for name, mk := range allControllers(t) {
		t.Run(name, func(t *testing.T) {
			run := func() *circuit.Outcome {
				sim := buildSim(t, mk(), mustCap(t, 100e-6, 1.0), irr, 20e-3)
				out, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			a, b := run(), run()
			if a.CyclesDone != b.CyclesDone ||
				a.EnergyHarvested != b.EnergyHarvested ||
				a.EnergyDelivered != b.EnergyDelivered ||
				a.FinalCapVoltage != b.FinalCapVoltage {
				t.Errorf("non-deterministic outcome:\n  %+v\n  %+v", a, b)
			}
		})
	}
}

// TestSprintAnalyticMatchesSimulation validates the Eq. 12 first-order
// sprint-energy estimate against the transient simulator within a factor
// of 3 (it is a linearisation, so only the magnitude and sign must hold).
func TestSprintAnalyticMatchesSimulation(t *testing.T) {
	cell := pv.NewCell()
	proc := cpu.NewProcessor()
	mgr := core.NewManager(core.NewSystem(cell, proc), reg.NewBuck())

	const (
		cycles   = 6e6
		deadline = 26e-3
		factor   = 0.2
		irrLevel = 0.5
	)
	run := func(sprint float64) float64 {
		vmpp, _ := cell.MPP(irrLevel)
		storage := mustCap(t, 100e-6, vmpp)
		res, err := mgr.RunDeadlineJob(core.DeadlineRunConfig{
			Cap:            storage,
			Irradiance:     circuit.ConstantIrradiance(irrLevel),
			Cycles:         cycles,
			Deadline:       deadline,
			Sprint:         sprint,
			Bypass:         true,
			Step:           4e-6,
			StopOnBrownout: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outcome.EnergyHarvested
	}
	simGain := run(factor) - run(0)

	plan, err := sched.NewSprintPlan(proc, cycles, deadline, factor)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the analytic estimate at a representative operating point:
	// node ~0.85 V (below the 0.5-sun MPP), load = the constant-speed draw.
	loadPlan, err := sched.PlanDeadline(proc, cycles, deadline, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	analytic := plan.ExtraSolarEnergy(cell, irrLevel, 0.85, loadPlan.SourceEnergy/deadline, 100e-6)

	if simGain <= 0 {
		t.Fatalf("simulated sprint gain %.4g J not positive", simGain)
	}
	if analytic <= 0 {
		t.Fatalf("analytic estimate %.4g J not positive", analytic)
	}
	ratio := simGain / analytic
	if ratio < 1.0/3 || ratio > 3 {
		t.Errorf("simulated %.4g J vs analytic %.4g J (ratio %.2f), want within 3x", simGain, analytic, ratio)
	}
}

// TestFullStackWeatherFederationMPPT composes the whole repository: a
// partly-cloudy trace powers a federated store while the time-based tracker
// manages DVFS. The node must make useful progress and stay energy
// consistent.
func TestFullStackWeatherFederationMPPT(t *testing.T) {
	gen := weather.NewGenerator(rand.New(rand.NewSource(99)),
		weather.WithDwellTimes(0.5, 0.3),
		weather.WithCloudAttenuation(0.2, 0.05),
		weather.WithRelaxationTime(0.1),
	)
	trace, err := gen.Trace(2.0, 0.002, nil)
	if err != nil {
		t.Fatal(err)
	}

	lead := mustCap(t, 10e-6, 0.9)
	bulk := mustCap(t, 190e-6, 0.9)
	fed, err := cap.NewFederation([]*cap.Capacitor{lead, bulk})
	if err != nil {
		t.Fatal(err)
	}

	cell := pv.NewCell()
	proc := cpu.NewProcessor()
	table := mppt.BuildTable(cell, []float64{0.1, 0.25, 0.5, 1.0}, func(_, _, p float64) (float64, float64, bool) {
		return 0.5, proc.FrequencyForPower(0.5, 0.6*p), false
	})
	tracker := &mppt.Tracker{Table: table, V1Index: 0, V2Index: 1, InitialEntry: table.Len() - 1}
	e0 := fed.Energy()

	sim, err := circuit.New(circuit.Config{
		Cell:       cell,
		Proc:       proc,
		Reg:        reg.NewSC(),
		Cap:        fed,
		Irradiance: trace.At,
		Controller: tracker,
		Comparators: []circuit.Comparator{
			{Threshold: 1.0, Hysteresis: 0.004},
			{Threshold: 0.9, Hysteresis: 0.004},
		},
		Step:    10e-6,
		MaxTime: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.CyclesDone < 50e6 {
		t.Errorf("full stack executed only %.3g cycles over 2 s", out.CyclesDone)
	}
	if out.EnergyHarvested <= 0 || out.EnergyDelivered <= 0 {
		t.Error("no energy flowed through the full stack")
	}
	delta := fed.Energy() - e0
	balance := out.EnergyHarvested - out.EnergyDelivered - out.EnergyLost - delta
	scale := math.Max(out.EnergyHarvested, 1e-9)
	if math.Abs(balance)/scale > 0.05 {
		t.Errorf("full-stack energy imbalance %.2f%%", 100*math.Abs(balance)/scale)
	}
}
