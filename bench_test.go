// Package repro's benchmark harness: one benchmark per table/figure of the
// paper's evaluation plus ablations of the design choices called out in
// DESIGN.md. Each figure benchmark regenerates the experiment end to end
// and reports the headline quantity as a custom metric, so
//
//	go test -bench=Fig -benchmem
//
// reproduces the entire evaluation and prints the measured values alongside
// throughput.
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/cap"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/expt"
	"repro/internal/fleet"
	"repro/internal/mppt"
	"repro/internal/pv"
	"repro/internal/reg"
	"repro/internal/sched"
)

// BenchmarkFig2SolarIV regenerates the solar I-V family (Fig. 2).
func BenchmarkFig2SolarIV(b *testing.B) {
	var mppFullSun float64
	for i := 0; i < b.N; i++ {
		r := expt.Fig2()
		mppFullSun = r.MPPs["full sun"][1]
	}
	b.ReportMetric(mppFullSun*1e3, "mpp-mW")
}

// BenchmarkFig3LDOEfficiency regenerates the LDO curve (Fig. 3).
func BenchmarkFig3LDOEfficiency(b *testing.B) {
	var at055 float64
	for i := 0; i < b.N; i++ {
		at055 = expt.Fig3().At055[0]
	}
	b.ReportMetric(at055*100, "eta055-%")
}

// BenchmarkFig4SCEfficiency regenerates the SC curves (Fig. 4).
func BenchmarkFig4SCEfficiency(b *testing.B) {
	var at055 float64
	for i := 0; i < b.N; i++ {
		at055 = expt.Fig4().At055[0]
	}
	b.ReportMetric(at055*100, "eta055-%")
}

// BenchmarkFig5BuckEfficiency regenerates the buck curves (Fig. 5).
func BenchmarkFig5BuckEfficiency(b *testing.B) {
	var at055 float64
	for i := 0; i < b.N; i++ {
		at055 = expt.Fig5().At055[0]
	}
	b.ReportMetric(at055*100, "eta055-%")
}

// BenchmarkFig6aOperatingPoint solves the unregulated operating point
// against the MPP (Fig. 6a).
func BenchmarkFig6aOperatingPoint(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		r := expt.Fig6a()
		frac = r.Unregulated.SolarPower / r.MPPPower
	}
	b.ReportMetric(frac*100, "unreg-extraction-%")
}

// BenchmarkFig6bRegulatedPower runs the regulated-vs-direct comparison
// (Fig. 6b; paper: ~31% more power, ~18% speedup with the SC converter).
func BenchmarkFig6bRegulatedPower(b *testing.B) {
	var delivery, speedup float64
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig6b()
		if err != nil {
			b.Fatal(err)
		}
		delivery = r.Comparisons["SC"].DeliveryGain
		speedup = r.Comparisons["SC"].Speedup
	}
	b.ReportMetric(delivery*100, "delivery-gain-%")
	b.ReportMetric(speedup*100, "speedup-%")
}

// BenchmarkFig7aLowLight runs the variable-light analysis and bypass
// crossover (Fig. 7a; paper: bypass wins at ~25% light).
func BenchmarkFig7aLowLight(b *testing.B) {
	var crossover float64
	for i := 0; i < b.N; i++ {
		crossover = expt.Fig7a().Crossover
	}
	b.ReportMetric(crossover*100, "crossover-%light")
}

// BenchmarkFig7bHolisticMEP computes the holistic MEP shift and saving
// (Fig. 7b; paper: up to +0.1 V shift, up to ~31% saving).
func BenchmarkFig7bHolisticMEP(b *testing.B) {
	var shift, savings float64
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig7b()
		if err != nil {
			b.Fatal(err)
		}
		shift = r.MEPs["SC"].VoltageShift
		savings = r.MEPs["SC"].Savings
	}
	b.ReportMetric(shift*1e3, "mep-shift-mV")
	b.ReportMetric(savings*100, "savings-%")
}

// BenchmarkFig8MPPTracking runs the light-step transient with the
// time-based tracker (Fig. 8).
func BenchmarkFig8MPPTracking(b *testing.B) {
	var errFrac float64
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		errFrac = r.EstimateError
	}
	b.ReportMetric(errFrac*100, "estimate-error-%")
}

// BenchmarkFig9aCompletionTime sweeps the energy-vs-completion-time
// trade-off (Fig. 9a).
func BenchmarkFig9aCompletionTime(b *testing.B) {
	var fastest float64
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig9a()
		if err != nil {
			b.Fatal(err)
		}
		fastest = r.Fastest
	}
	b.ReportMetric(fastest*1e3, "fastest-ms")
}

// BenchmarkFig9bSprintBypass runs the four-policy comparison (Fig. 9b;
// paper: sprint ~+10% solar energy, +bypass up to +25% cap energy).
func BenchmarkFig9bSprintBypass(b *testing.B) {
	var solar, capGain float64
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig9b()
		if err != nil {
			b.Fatal(err)
		}
		solar = r.SolarGain
		capGain = r.CapGain
	}
	b.ReportMetric(solar*100, "sprint-solar-gain-%")
	b.ReportMetric(capGain*100, "cap-energy-gain-%")
}

// BenchmarkFig11aSystemCharacteristics sweeps the measured-style speed and
// energy breakdown (Fig. 11a).
func BenchmarkFig11aSystemCharacteristics(b *testing.B) {
	var shift float64
	for i := 0; i < b.N; i++ {
		shift = expt.Fig11a().MEP.VoltageShift
	}
	b.ReportMetric(shift*1e3, "mep-shift-mV")
}

// BenchmarkFig11bSystemDemo runs the end-to-end demonstration (Fig. 11b;
// paper: ~3 ms / ~20% extension, ~10% more solar energy).
func BenchmarkFig11bSystemDemo(b *testing.B) {
	var extMS, solar float64
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig11b()
		if err != nil {
			b.Fatal(err)
		}
		extMS = r.ExtensionMS
		solar = r.SolarGainPct
	}
	b.ReportMetric(extMS, "extension-ms")
	b.ReportMetric(solar, "solar-gain-%")
}

// BenchmarkHeadlineSavings reproduces the summary claim (paper: up to ~30%
// saving from holistic optimisation).
func BenchmarkHeadlineSavings(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		best = expt.Headline().Best
	}
	b.ReportMetric(best*100, "best-saving-%")
}

// BenchmarkKernelFullRun times one representative registry experiment end to
// end (Fig. 11b: the longest transient in the registry — MPPT, sprinting and
// bypass through a light dip). This is the simulation-kernel gate: it is what
// `benchguard -suite sim` measures as sim_full_run, and what the warm-started
// PV solver (DESIGN.md Sec. 10) is meant to speed up.
func BenchmarkKernelFullRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Render("fig11b"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelBatch measures the batched PV kernel (DESIGN.md Sec. 13):
// one 10000-point fine I-V sweep (1 µV spacing around the knee, where
// Newton iterations are most expensive) solved through pv.SolveBatch in
// chunks of 1, 100 and 10000 points. Chunk width is the whole win: within
// a chunk the walking solver state carries warm starts, replay
// trajectories and the anchored exponential from lane to lane, while width
// 1 degenerates to a cold scalar solve per point. The results are
// bit-identical at every width (the batch parity suites); only solves/sec
// moves. A lockstep sub-benchmark times circuit.RunBatch advancing a
// 16-lane slab, the shape the fleet scheduler runs per epoch.
func BenchmarkKernelBatch(b *testing.B) {
	const points = 10000
	cell := pv.NewCell()
	vs := make([]float64, points)
	for i := range vs {
		vs[i] = 0.995 + 0.01*float64(i)/points
	}
	irr := []float64{0.8}
	out := make([]float64, points)
	for _, width := range []int{1, 100, 10000} {
		b.Run(fmt.Sprintf("w=%d", width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for lo := 0; lo < points; lo += width {
					hi := lo + width
					if hi > points {
						hi = points
					}
					cell.SolveBatch(vs[lo:hi], irr, out[lo:hi], nil)
				}
			}
			b.ReportMetric(float64(points)*float64(b.N)/b.Elapsed().Seconds(), "solves/s")
		})
	}
	b.Run("lockstep-16lane", func(b *testing.B) {
		const lanes, steps = 16, 500
		mk := func() []circuit.Config {
			cfgs := make([]circuit.Config, lanes)
			for i := range cfgs {
				storage, err := cap.New(100e-6, 0.8+0.05*float64(i%8), 2.0)
				if err != nil {
					b.Fatal(err)
				}
				cfgs[i] = circuit.Config{
					Cell:       cell,
					Proc:       cpu.NewProcessor(),
					Reg:        reg.NewSC(),
					Cap:        storage,
					Irradiance: circuit.ConstantIrradiance(0.2 + 0.1*float64(i%5)),
					Controller: &circuit.FixedPoint{Supply: 0.5},
					Step:       5e-6,
					MaxTime:    steps * 5e-6,
				}
			}
			return cfgs
		}
		for i := 0; i < b.N; i++ {
			if _, err := circuit.RunBatch(mk()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(lanes*steps)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
	})
}

// --- Ablations (DESIGN.md Sec. 5) ---

// BenchmarkAblationSprintFactor sweeps the sprint factor and reports the
// harvested-energy gain of the best factor over constant speed.
func BenchmarkAblationSprintFactor(b *testing.B) {
	run := func(sprint float64) float64 {
		cell := pv.NewCell()
		proc := cpu.NewProcessor()
		mgr := core.NewManager(core.NewSystem(cell, proc), reg.NewBuck())
		vmpp, _ := cell.MPP(0.5)
		storage, err := cap.New(100e-6, vmpp, 2.0)
		if err != nil {
			b.Fatal(err)
		}
		res, err := mgr.RunDeadlineJob(core.DeadlineRunConfig{
			Cap:            storage,
			Irradiance:     circuit.RampIrradiance(0.5, 0.02, 8e-3, 18e-3),
			Cycles:         6e6,
			Deadline:       26e-3,
			Sprint:         sprint,
			Bypass:         true,
			Step:           4e-6,
			StopOnBrownout: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Outcome.EnergyHarvested
	}
	var bestGain float64
	for i := 0; i < b.N; i++ {
		base := run(0)
		bestGain = 0
		for _, s := range []float64{0.1, 0.2, 0.3, 0.4} {
			if g := run(s)/base - 1; g > bestGain {
				bestGain = g
			}
		}
	}
	b.ReportMetric(bestGain*100, "best-sprint-gain-%")
}

// BenchmarkAblationThresholds sweeps the comparator threshold spacing used
// by the Eq. 7 estimator and reports the worst estimation error.
func BenchmarkAblationThresholds(b *testing.B) {
	cell := pv.NewCell()
	_, truePin := cell.MPP(0.25)
	run := func(v1, v2 float64) float64 {
		proc := cpu.NewProcessor()
		mgr := core.NewManager(core.NewSystem(cell, proc), reg.NewSC())
		vmpp, _ := cell.MPP(1.0)
		storage, err := cap.New(100e-6, vmpp, 2.0)
		if err != nil {
			b.Fatal(err)
		}
		res, err := mgr.RunTracked(core.TrackedRunConfig{
			Cap:        storage,
			Irradiance: circuit.StepIrradiance(1.0, 0.25, 8e-3),
			Levels:     []float64{0.05, 0.25, 1.0},
			V1:         v1,
			V2:         v2,
			Duration:   40e-3,
			Step:       4e-6,
		})
		if err != nil || len(res.Estimates) == 0 {
			return 1 // total failure counts as 100% error
		}
		e := res.Estimates[0]/truePin - 1
		if e < 0 {
			e = -e
		}
		return e
	}
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, spacing := range []float64{0.02, 0.05, 0.10, 0.20} {
			if e := run(1.0, 1.0-spacing); e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(worst*100, "worst-estimate-error-%")
}

// BenchmarkAblationSCRatios compares 1- and 3-ratio SC converters on their
// efficiency envelope: the mean full-load efficiency over the output
// window. Extra ratios only pay off above the lowest ratio's ideal output
// (the holistic MEP itself sits at the 2:1 edge in every configuration, so
// the envelope — not the MEP — is where granularity matters).
func BenchmarkAblationSCRatios(b *testing.B) {
	const vin = 1.1
	meanEta := func(sc *reg.SC) float64 {
		sum, n := 0.0, 0
		for v := 0.30; v <= 0.85; v += 0.01 {
			sum += sc.Efficiency(vin, v, 10e-3)
			n++
		}
		return sum / float64(n)
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		one := meanEta(reg.NewSC(reg.WithSCRatios([]float64{1.0 / 2.0})))
		three := meanEta(reg.NewSC())
		gain = three/one - 1
	}
	b.ReportMetric(gain*100, "3ratio-envelope-gain-%")
}

// BenchmarkAblationTimestep compares the transient solver at coarse and
// fine steps and reports the harvested-energy discrepancy.
func BenchmarkAblationTimestep(b *testing.B) {
	run := func(step float64) float64 {
		cell := pv.NewCell()
		proc := cpu.NewProcessor()
		storage, err := cap.New(100e-6, 1.0, 2.0)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := circuit.New(circuit.Config{
			Cell:       cell,
			Proc:       proc,
			Reg:        reg.NewSC(),
			Cap:        storage,
			Irradiance: circuit.StepIrradiance(1.0, 0.25, 5e-3),
			Controller: &circuit.FixedPoint{Supply: 0.5},
			Step:       step,
			MaxTime:    15e-3,
		})
		if err != nil {
			b.Fatal(err)
		}
		out, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		return out.EnergyHarvested
	}
	var discrepancy float64
	for i := 0; i < b.N; i++ {
		fine := run(1e-6)
		coarse := run(20e-6)
		discrepancy = (coarse - fine) / fine
		if discrepancy < 0 {
			discrepancy = -discrepancy
		}
	}
	b.ReportMetric(discrepancy*100, "coarse-step-error-%")
}

// BenchmarkAblationBypassRule compares the model-based bypass crossover
// against fixed-threshold rules at 10% and 50% light.
func BenchmarkAblationBypassRule(b *testing.B) {
	cell := pv.NewCell()
	proc := cpu.NewProcessor()
	sys := core.NewSystem(cell, proc)
	sc := reg.NewSC()
	var modelCrossover float64
	for i := 0; i < b.N; i++ {
		modelCrossover = sys.BypassCrossover(sc, 0.02, 1.0)
		// Quantify the frequency lost by the two naive fixed rules at a
		// probe level between them.
		for _, fixed := range []float64{0.10, 0.50} {
			probe := (fixed + modelCrossover) / 2
			d := sys.DecideBypass(sc, probe)
			_ = d
		}
	}
	b.ReportMetric(modelCrossover*100, "model-crossover-%light")
}

// BenchmarkMPPTEstimator micro-benchmarks the Eq. 7 estimator.
func BenchmarkMPPTEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mppt.EstimateInputPower(100e-6, 1.0, 0.9, 1e-3, 10e-3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerPlan micro-benchmarks the Eq. 8-10 deadline planner.
func BenchmarkSchedulerPlan(b *testing.B) {
	proc := cpu.NewProcessor()
	for i := 0; i < b.N; i++ {
		if _, err := sched.PlanDeadline(proc, 6e6, 20e-3, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchmarkHarnessSmoke keeps the figure benchmarks correct under plain
// `go test` by running each once and discarding the report.
func TestBenchmarkHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiments are slow")
	}
	for name, e := range expt.Registry() {
		if err := e.Run(io.Discard); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// --- Extension experiments ---

// BenchmarkExtCorners evaluates the holistic MEP across process corners.
func BenchmarkExtCorners(b *testing.B) {
	var worstSaving float64
	for i := 0; i < b.N; i++ {
		r, err := expt.ExtCorners()
		if err != nil {
			b.Fatal(err)
		}
		worstSaving = 1
		for _, s := range r.Savings {
			if s < worstSaving {
				worstSaving = s
			}
		}
	}
	b.ReportMetric(worstSaving*100, "worst-corner-saving-%")
}

// BenchmarkExtDomains runs the multi-domain allocator at three light levels.
func BenchmarkExtDomains(b *testing.B) {
	var coreShare float64
	for i := 0; i < b.N; i++ {
		r, err := expt.ExtDomains()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Allocs[0].Shares {
			if s.Name == "core" {
				coreShare = s.LoadPower
			}
		}
	}
	b.ReportMetric(coreShare*1e3, "core-share-mW")
}

// BenchmarkExtWeather compares policies over a stochastic cloudy trace.
func BenchmarkExtWeather(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := expt.ExtWeather()
		if err != nil {
			b.Fatal(err)
		}
		gain = r.TrackGain
	}
	b.ReportMetric(gain*100, "tracked-gain-%")
}

// BenchmarkExtIntermittent compares checkpoint policies under blink power.
func BenchmarkExtIntermittent(b *testing.B) {
	var jitOverhead float64
	for i := 0; i < b.N; i++ {
		r, err := expt.ExtIntermittent()
		if err != nil {
			b.Fatal(err)
		}
		for k, p := range r.Policies {
			if p == "voltage-triggered" {
				jitOverhead = r.Overheads[k]
			}
		}
	}
	b.ReportMetric(jitOverhead/1e6, "jit-overhead-Mcycles")
}

// BenchmarkAblationMPPTvsPO compares the paper's time-based tracker against
// conventional perturb-and-observe on harvested energy through a light
// step: the one-shot estimate should recover faster.
func BenchmarkAblationMPPTvsPO(b *testing.B) {
	irr := circuit.StepIrradiance(1.0, 0.25, 10e-3)
	const duration = 40e-3
	cell := pv.NewCell()
	proc := cpu.NewProcessor()
	vmpp, _ := cell.MPP(1.0)

	runPO := func() float64 {
		storage, err := cap.New(100e-6, vmpp, 2.0)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := circuit.New(circuit.Config{
			Cell: cell, Proc: proc, Reg: reg.NewSC(), Cap: storage,
			Irradiance: irr,
			Controller: &mppt.PerturbObserve{Supply: 0.5},
			Step:       2e-6, MaxTime: duration,
		})
		if err != nil {
			b.Fatal(err)
		}
		out, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		return out.EnergyHarvested
	}
	runTB := func() float64 {
		storage, err := cap.New(100e-6, vmpp, 2.0)
		if err != nil {
			b.Fatal(err)
		}
		table := mppt.BuildTable(cell, []float64{0.1, 0.25, 0.5, 1.0}, func(_, _, p float64) (float64, float64, bool) {
			return 0.5, proc.FrequencyForPower(0.5, 0.6*p), false
		})
		sim, err := circuit.New(circuit.Config{
			Cell: cell, Proc: proc, Reg: reg.NewSC(), Cap: storage,
			Irradiance: irr,
			Controller: &mppt.Tracker{Table: table, V1Index: 0, V2Index: 1, InitialEntry: table.Len() - 1},
			Comparators: []circuit.Comparator{
				{Threshold: 1.00, Hysteresis: 0.004},
				{Threshold: 0.90, Hysteresis: 0.004},
			},
			Step: 2e-6, MaxTime: duration,
		})
		if err != nil {
			b.Fatal(err)
		}
		out, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		return out.EnergyHarvested
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = runTB()/runPO() - 1
	}
	b.ReportMetric(gain*100, "timebased-vs-po-gain-%")
}

// BenchmarkAblationBuckPFM quantifies the light-load efficiency recovered
// by pulse-frequency modulation.
func BenchmarkAblationBuckPFM(b *testing.B) {
	pwm := reg.NewBuck()
	pfm := reg.NewBuck(reg.WithBuckPFM(3e-3, 50e-6))
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = pfm.Efficiency(1.2, 0.55, 0.5e-3)/pwm.Efficiency(1.2, 0.55, 0.5e-3) - 1
	}
	b.ReportMetric(gain*100, "pfm-lightload-gain-%")
}

// BenchmarkExtFederation measures the federated-storage cold-start speedup.
func BenchmarkExtFederation(b *testing.B) {
	var boot float64
	for i := 0; i < b.N; i++ {
		r, err := expt.ExtFederation()
		if err != nil {
			b.Fatal(err)
		}
		boot = r.BootSpeedup
	}
	b.ReportMetric(boot, "boot-speedup-x")
}

// BenchmarkExtShading quantifies the partial-shading local-maximum trap.
func BenchmarkExtShading(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := expt.ExtShading()
		if err != nil {
			b.Fatal(err)
		}
		worst = r.WorstLoss
	}
	b.ReportMetric(worst*100, "worst-stranded-%")
}

// BenchmarkExtDutyCycle maps sustainable throughput against light level.
func BenchmarkExtDutyCycle(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := expt.ExtDutyCycle()
		if err != nil {
			b.Fatal(err)
		}
		gain = r.BestGain
	}
	b.ReportMetric(gain*100, "holistic-gain-%")
}

// BenchmarkExtTemperature sweeps the energy floor across die temperature.
func BenchmarkExtTemperature(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := expt.ExtTemperature()
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.ColdToHot
	}
	b.ReportMetric(ratio, "hot-cold-energy-x")
}

// BenchmarkAblationClockLevels quantifies the harvest lost to clock
// quantisation: the MPP-holding loop with 4-, 16-level and continuous
// clock generators over a light step.
func BenchmarkAblationClockLevels(b *testing.B) {
	cell := pv.NewCell()
	proc := cpu.NewProcessor()
	vmpp, _ := cell.MPP(1.0)
	table := mppt.BuildTable(cell, []float64{0.25, 1.0}, func(_, _, p float64) (float64, float64, bool) {
		return 0.5, proc.FrequencyForPower(0.5, 0.6*p), false
	})
	run := func(levels []float64) float64 {
		storage, err := cap.New(100e-6, vmpp, 2.0)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := circuit.New(circuit.Config{
			Cell: cell, Proc: proc, Reg: reg.NewSC(), Cap: storage,
			Irradiance: circuit.StepIrradiance(1.0, 0.25, 10e-3),
			Controller: &mppt.Tracker{Table: table, V1Index: 0, V2Index: 1, InitialEntry: table.Len() - 1},
			Comparators: []circuit.Comparator{
				{Threshold: 1.00, Hysteresis: 0.004},
				{Threshold: 0.90, Hysteresis: 0.004},
			},
			ClockLevels: levels,
			Step:        2e-6,
			MaxTime:     30e-3,
		})
		if err != nil {
			b.Fatal(err)
		}
		out, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		return out.EnergyHarvested
	}
	grid := func(n int) []float64 {
		levels := make([]float64, n)
		for i := range levels {
			levels[i] = float64(i+1) * 480e6 / float64(n)
		}
		return levels
	}
	var loss4, loss16 float64
	for i := 0; i < b.N; i++ {
		continuous := run(nil)
		loss4 = 1 - run(grid(4))/continuous
		loss16 = 1 - run(grid(16))/continuous
	}
	b.ReportMetric(loss4*100, "4level-harvest-loss-%")
	b.ReportMetric(loss16*100, "16level-harvest-loss-%")
}

// BenchmarkFleetRun measures the shared-clock fleet engine (internal/fleet)
// at three population sizes, reporting nodes/sec: N battery-less nodes,
// each integrating 500 steps under its own weather stream, advanced in
// 2 ms epochs with aggregation at every barrier.
func BenchmarkFleetRun(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var completed int
			for i := 0; i < b.N; i++ {
				rep, err := fleet.Run(fleet.Config{
					Nodes: n, Seed: 1, Horizon: 0.01, Epoch: 2e-3, Step: 2e-5,
				})
				if err != nil {
					b.Fatal(err)
				}
				completed = rep.Completed
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
			b.ReportMetric(float64(completed), "completed")
		})
	}
}

// BenchmarkFleetDark measures event-horizon fast-forward on the regime it
// exists for: a 10k-node fleet whose sky is exactly dark for almost the
// whole horizon, so every node drains, collapses, and then sits in a
// provably-inert fixed point. The ffwd sub-benchmark skips those spans
// (O(events) per epoch per dead node); noffwd steps them verbatim. Both
// produce byte-identical reports — the whole point — so nodes/s is the
// only number that moves.
//
// Geometry note: a verbatim step through a collapsed node is already
// cheap (the kernel short-circuits), so the skip only dominates once the
// dark tail outnumbers the bright head ~100:1 in steps — hence dark=0.99
// over a long horizon rather than a fatter bright head. The benchguard
// fleet_dark_* entries guard a scaled-down version of this ratio in
// BENCH_sim.json.
func BenchmarkFleetDark(b *testing.B) {
	base := fleet.Config{
		Nodes: 10000, Seed: 1, Horizon: 10.0, Epoch: 0.1, Step: 2e-4, Dark: 0.99,
	}
	for _, mode := range []struct {
		name string
		noFF bool
	}{{"ffwd", false}, {"noffwd", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := base
			cfg.NoFastForward = mode.noFF
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cfg.Nodes)*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}

// BenchmarkKernelFastForward measures the single-simulator skip path: a
// bright head, then exact darkness for the rest of a long horizon. The
// ffwd run crosses the dead tail in O(1) attempts; the noffwd run pays a
// stepOnce per step. ns/step is reported against the nominal step count,
// so the ffwd number falls with the length of the skipped tail.
func BenchmarkKernelFastForward(b *testing.B) {
	const step, maxTime = 2e-5, 2.0
	build := func(noFF bool) *circuit.Simulator {
		storage, err := cap.New(100e-6, 1.2, 2.0)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := circuit.New(circuit.Config{
			Cell:             pv.NewCell(),
			Proc:             cpu.NewProcessor(),
			Reg:              reg.NewSC(),
			Cap:              storage,
			IrradianceSource: circuit.StepSource{Before: 1.0, After: 0, T0: 0.02},
			Controller:       &circuit.FixedPoint{Supply: 0.5},
			AuxLoad:          func(float64) float64 { return 0.4e-3 },
			Step:             step,
			MaxTime:          maxTime,
			NoFastForward:    noFF,
		})
		if err != nil {
			b.Fatal(err)
		}
		return sim
	}
	for _, mode := range []struct {
		name string
		noFF bool
	}{{"ffwd", false}, {"noffwd", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := build(mode.noFF).Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/(maxTime/step), "ns/step")
		})
	}
}
